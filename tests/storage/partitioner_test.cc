#include "storage/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace grnn::storage {
namespace {

graph::Graph Path(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u + 1 < n; ++u) {
    edges.push_back({u, static_cast<NodeId>(u + 1), 1.0});
  }
  return graph::Graph::FromEdges(n, edges).ValueOrDie();
}

bool IsPermutation(const std::vector<NodeId>& order, NodeId n) {
  if (order.size() != n) {
    return false;
  }
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId i = 0; i < n; ++i) {
    if (sorted[i] != i) {
      return false;
    }
  }
  return true;
}

TEST(PartitionerTest, NaturalIsIdentity) {
  auto g = Path(10);
  auto order = ComputeNodeOrder(g, NodeOrder::kNatural);
  std::vector<NodeId> want(10);
  std::iota(want.begin(), want.end(), NodeId{0});
  EXPECT_EQ(order, want);
}

TEST(PartitionerTest, BfsIsPermutationAndStartsAtZero) {
  auto g = Path(50);
  auto order = ComputeNodeOrder(g, NodeOrder::kBfs);
  EXPECT_TRUE(IsPermutation(order, 50));
  EXPECT_EQ(order[0], 0u);
  // On a path, BFS from 0 is exactly the natural order.
  for (NodeId i = 0; i < 50; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(PartitionerTest, BfsCoversDisconnectedComponents) {
  auto g =
      graph::Graph::FromEdges(6, {{0, 1, 1.0}, {3, 4, 1.0}}).ValueOrDie();
  auto order = ComputeNodeOrder(g, NodeOrder::kBfs);
  EXPECT_TRUE(IsPermutation(order, 6));
}

TEST(PartitionerTest, BfsKeepsNeighborsClose) {
  // Star: hub 0; BFS emits hub then all leaves contiguously.
  std::vector<Edge> edges;
  for (NodeId leaf = 1; leaf < 8; ++leaf) {
    edges.push_back({0, leaf, 1.0});
  }
  auto g = graph::Graph::FromEdges(8, edges).ValueOrDie();
  auto order = ComputeNodeOrder(g, NodeOrder::kBfs);
  EXPECT_EQ(order[0], 0u);
  EXPECT_TRUE(IsPermutation(order, 8));
}

TEST(PartitionerTest, RandomIsSeededPermutation) {
  auto g = Path(100);
  auto a = ComputeNodeOrder(g, NodeOrder::kRandom, 1);
  auto b = ComputeNodeOrder(g, NodeOrder::kRandom, 1);
  auto c = ComputeNodeOrder(g, NodeOrder::kRandom, 2);
  EXPECT_TRUE(IsPermutation(a, 100));
  EXPECT_EQ(a, b);  // deterministic per seed
  EXPECT_NE(a, c);  // different seed, different shuffle
}

}  // namespace
}  // namespace grnn::storage
