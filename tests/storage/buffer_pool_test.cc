#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

namespace grnn::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<MemoryDiskManager>(128);
    for (int i = 0; i < 10; ++i) {
      auto id = disk_->AllocatePage().ValueOrDie();
      std::vector<uint8_t> data(128, static_cast<uint8_t>(i));
      ASSERT_TRUE(disk_->WritePage(id, data.data()).ok());
    }
  }

  std::unique_ptr<MemoryDiskManager> disk_;
};

TEST_F(BufferPoolTest, HitAvoidsPhysicalRead) {
  BufferPool pool(disk_.get(), 4);
  { auto g = pool.Acquire(3).ValueOrDie(); }
  { auto g = pool.Acquire(3).ValueOrDie(); }
  EXPECT_EQ(pool.stats().logical_reads, 2u);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  EXPECT_NEAR(pool.stats().HitRate(), 0.5, 1e-12);
}

TEST_F(BufferPoolTest, ReadsCorrectContent) {
  BufferPool pool(disk_.get(), 4);
  auto g = pool.Acquire(7).ValueOrDie();
  EXPECT_EQ(g.data()[0], 7);
  EXPECT_EQ(g.data()[127], 7);
}

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  BufferPool pool(disk_.get(), 2);
  { auto a = pool.Acquire(0).ValueOrDie(); }
  { auto b = pool.Acquire(1).ValueOrDie(); }
  // Touch 0 so that 1 is the LRU victim.
  { auto a = pool.Acquire(0).ValueOrDie(); }
  { auto c = pool.Acquire(2).ValueOrDie(); }  // evicts 1
  pool.ResetStats();
  { auto a = pool.Acquire(0).ValueOrDie(); }  // hit
  EXPECT_EQ(pool.stats().physical_reads, 0u);
  { auto b = pool.Acquire(1).ValueOrDie(); }  // miss (was evicted)
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST_F(BufferPoolTest, FifoEvictsOldestLoaded) {
  BufferPool pool(disk_.get(), 2, ReplacementPolicy::kFifo);
  { auto a = pool.Acquire(0).ValueOrDie(); }
  { auto b = pool.Acquire(1).ValueOrDie(); }
  // Re-touching 0 does NOT refresh FIFO age.
  { auto a = pool.Acquire(0).ValueOrDie(); }
  { auto c = pool.Acquire(2).ValueOrDie(); }  // evicts 0 (oldest load)
  pool.ResetStats();
  { auto b = pool.Acquire(1).ValueOrDie(); }  // hit
  EXPECT_EQ(pool.stats().physical_reads, 0u);
  { auto a = pool.Acquire(0).ValueOrDie(); }  // miss
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(disk_.get(), 2);
  auto pinned = pool.Acquire(0).ValueOrDie();
  { auto b = pool.Acquire(1).ValueOrDie(); }
  { auto c = pool.Acquire(2).ValueOrDie(); }  // must evict 1, not pinned 0
  pool.ResetStats();
  { auto a = pool.Acquire(0).ValueOrDie(); }
  EXPECT_EQ(pool.stats().physical_reads, 0u);
  EXPECT_EQ(pinned.data()[5], 0);
}

TEST_F(BufferPoolTest, AllPinnedIsResourceExhausted) {
  BufferPool pool(disk_.get(), 2);
  auto a = pool.Acquire(0).ValueOrDie();
  auto b = pool.Acquire(1).ValueOrDie();
  auto c = pool.Acquire(2);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsResourceExhausted());
  // Releasing one pin unblocks.
  a.Release();
  EXPECT_TRUE(pool.Acquire(2).ok());
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  BufferPool pool(disk_.get(), 1);
  {
    auto g = pool.Acquire(4).ValueOrDie();
    g.mutable_data()[0] = 0xEE;
  }
  { auto other = pool.Acquire(5).ValueOrDie(); }  // evicts dirty page 4
  EXPECT_EQ(pool.stats().physical_writes, 1u);
  std::vector<uint8_t> buf(128);
  ASSERT_TRUE(disk_->ReadPage(4, buf.data()).ok());
  EXPECT_EQ(buf[0], 0xEE);
  EXPECT_EQ(buf[1], 4);
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyPages) {
  BufferPool pool(disk_.get(), 4);
  {
    auto g = pool.Acquire(2).ValueOrDie();
    g.mutable_data()[10] = 0x77;
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<uint8_t> buf(128);
  ASSERT_TRUE(disk_->ReadPage(2, buf.data()).ok());
  EXPECT_EQ(buf[10], 0x77);
}

TEST_F(BufferPoolTest, InvalidateDropsCleanState) {
  BufferPool pool(disk_.get(), 4);
  { auto g = pool.Acquire(2).ValueOrDie(); }
  ASSERT_TRUE(pool.Invalidate().ok());
  EXPECT_EQ(pool.num_resident(), 0u);
  pool.ResetStats();
  { auto g = pool.Acquire(2).ValueOrDie(); }
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST_F(BufferPoolTest, ZeroCapacityFaultsEveryAccess) {
  BufferPool pool(disk_.get(), 0);
  for (int i = 0; i < 3; ++i) {
    auto g = pool.Acquire(1).ValueOrDie();
    EXPECT_EQ(g.data()[0], 1);
  }
  EXPECT_EQ(pool.stats().logical_reads, 3u);
  EXPECT_EQ(pool.stats().physical_reads, 3u);
}

TEST_F(BufferPoolTest, ZeroCapacityAllowsConcurrentGuards) {
  BufferPool pool(disk_.get(), 0);
  auto a = pool.Acquire(1).ValueOrDie();
  auto b = pool.Acquire(2).ValueOrDie();
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(b.data()[0], 2);
}

TEST_F(BufferPoolTest, ZeroCapacityWritesThrough) {
  BufferPool pool(disk_.get(), 0);
  {
    auto g = pool.Acquire(6).ValueOrDie();
    g.mutable_data()[3] = 0x42;
  }
  std::vector<uint8_t> buf(128);
  ASSERT_TRUE(disk_->ReadPage(6, buf.data()).ok());
  EXPECT_EQ(buf[3], 0x42);
  EXPECT_EQ(pool.stats().physical_writes, 1u);
}

TEST_F(BufferPoolTest, MoveGuardTransfersPin) {
  BufferPool pool(disk_.get(), 2);
  PageGuard g2;
  {
    auto g1 = pool.Acquire(0).ValueOrDie();
    g2 = std::move(g1);
    EXPECT_FALSE(g1.valid());  // NOLINT(bugprone-use-after-move)
  }
  EXPECT_TRUE(g2.valid());
  EXPECT_EQ(g2.data()[0], 0);
  EXPECT_EQ(pool.num_pinned(), 1u);
  g2.Release();
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST_F(BufferPoolTest, StatsDeltaArithmetic) {
  BufferPool pool(disk_.get(), 4);
  { auto g = pool.Acquire(0).ValueOrDie(); }
  IoStats before = pool.stats();
  { auto g = pool.Acquire(1).ValueOrDie(); }
  { auto g = pool.Acquire(0).ValueOrDie(); }
  IoStats delta = pool.stats() - before;
  EXPECT_EQ(delta.logical_reads, 2u);
  EXPECT_EQ(delta.physical_reads, 1u);
}

TEST_F(BufferPoolTest, AcquireMissingPageFails) {
  BufferPool pool(disk_.get(), 2);
  EXPECT_FALSE(pool.Acquire(999).ok());
}

}  // namespace
}  // namespace grnn::storage
