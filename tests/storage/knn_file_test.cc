#include "storage/knn_file.h"

#include <gtest/gtest.h>

namespace grnn::storage {
namespace {

TEST(KnnFileTest, FreshSlotsReadEmpty) {
  MemoryDiskManager disk(128);
  auto file = KnnFile::Create(&disk, 20, 2).ValueOrDie();
  BufferPool pool(&disk, 4);
  std::vector<NnEntry> out;
  for (NodeId n = 0; n < 20; ++n) {
    ASSERT_TRUE(file.Read(&pool, n, &out).ok());
    EXPECT_TRUE(out.empty());
  }
}

TEST(KnnFileTest, WriteReadRoundTrip) {
  MemoryDiskManager disk(128);
  auto file = KnnFile::Create(&disk, 10, 3).ValueOrDie();
  BufferPool pool(&disk, 4);
  std::vector<NnEntry> in = {{5, 1.5}, {7, 2.25}, {2, 8.0}};
  ASSERT_TRUE(file.Write(&pool, 4, in).ok());
  std::vector<NnEntry> out;
  ASSERT_TRUE(file.Read(&pool, 4, &out).ok());
  EXPECT_EQ(out, in);
}

TEST(KnnFileTest, PartialListPreserved) {
  MemoryDiskManager disk(128);
  auto file = KnnFile::Create(&disk, 10, 4).ValueOrDie();
  BufferPool pool(&disk, 4);
  std::vector<NnEntry> in = {{1, 0.5}};
  ASSERT_TRUE(file.Write(&pool, 0, in).ok());
  std::vector<NnEntry> out;
  ASSERT_TRUE(file.Read(&pool, 0, &out).ok());
  EXPECT_EQ(out, in);
}

TEST(KnnFileTest, OverwriteShrinksList) {
  MemoryDiskManager disk(128);
  auto file = KnnFile::Create(&disk, 10, 3).ValueOrDie();
  BufferPool pool(&disk, 4);
  ASSERT_TRUE(file.Write(&pool, 2, {{1, 1.0}, {2, 2.0}, {3, 3.0}}).ok());
  ASSERT_TRUE(file.Write(&pool, 2, {{9, 0.25}}).ok());
  std::vector<NnEntry> out;
  ASSERT_TRUE(file.Read(&pool, 2, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].point, 9u);
}

TEST(KnnFileTest, NeighborsSlotsDoNotInterfere) {
  MemoryDiskManager disk(128);
  auto file = KnnFile::Create(&disk, 30, 2).ValueOrDie();
  BufferPool pool(&disk, 8);
  for (NodeId n = 0; n < 30; ++n) {
    ASSERT_TRUE(
        file.Write(&pool, n, {{n, static_cast<double>(n)}}).ok());
  }
  std::vector<NnEntry> out;
  for (NodeId n = 0; n < 30; ++n) {
    ASSERT_TRUE(file.Read(&pool, n, &out).ok());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].point, n);
    EXPECT_DOUBLE_EQ(out[0].dist, static_cast<double>(n));
  }
}

TEST(KnnFileTest, LargeKSpansPages) {
  // K=20 entries * 12 bytes = 240 > 128-byte page.
  MemoryDiskManager disk(128);
  auto file = KnnFile::Create(&disk, 5, 20).ValueOrDie();
  BufferPool pool(&disk, 8);
  std::vector<NnEntry> in;
  for (uint32_t i = 0; i < 20; ++i) {
    in.push_back({i + 100, i * 0.5});
  }
  ASSERT_TRUE(file.Write(&pool, 3, in).ok());
  std::vector<NnEntry> out;
  ASSERT_TRUE(file.Read(&pool, 3, &out).ok());
  EXPECT_EQ(out, in);
  // Adjacent slots unaffected.
  ASSERT_TRUE(file.Read(&pool, 2, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(file.Read(&pool, 4, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(KnnFileTest, ReadChargesIo) {
  MemoryDiskManager disk(4096);
  auto file = KnnFile::Create(&disk, 1000, 4).ValueOrDie();
  BufferPool pool(&disk, 2);
  std::vector<NnEntry> out;
  ASSERT_TRUE(file.Read(&pool, 0, &out).ok());
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  // A far-away node lives on a different page.
  ASSERT_TRUE(file.Read(&pool, 999, &out).ok());
  EXPECT_EQ(pool.stats().physical_reads, 2u);
}

TEST(KnnFileTest, WritesSurviveEvictionAndFlush) {
  MemoryDiskManager disk(128);
  auto file = KnnFile::Create(&disk, 40, 2).ValueOrDie();
  {
    BufferPool pool(&disk, 1);  // constant eviction pressure
    for (NodeId n = 0; n < 40; ++n) {
      ASSERT_TRUE(file.Write(&pool, n, {{n, 1.0}}).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  BufferPool fresh(&disk, 8);
  std::vector<NnEntry> out;
  for (NodeId n = 0; n < 40; ++n) {
    ASSERT_TRUE(file.Read(&fresh, n, &out).ok());
    ASSERT_EQ(out.size(), 1u) << "node " << n;
    EXPECT_EQ(out[0].point, n);
  }
}

TEST(KnnFileTest, RejectsInvalidArguments) {
  MemoryDiskManager disk(128);
  EXPECT_FALSE(KnnFile::Create(nullptr, 10, 1).ok());
  EXPECT_FALSE(KnnFile::Create(&disk, 0, 1).ok());
  EXPECT_FALSE(KnnFile::Create(&disk, 10, 0).ok());

  auto file = KnnFile::Create(&disk, 10, 2).ValueOrDie();
  BufferPool pool(&disk, 4);
  std::vector<NnEntry> out;
  EXPECT_TRUE(file.Read(&pool, 10, &out).IsOutOfRange());
  EXPECT_TRUE(
      file.Write(&pool, 0, {{1, 1.0}, {2, 2.0}, {3, 3.0}})
          .IsInvalidArgument());
}

}  // namespace
}  // namespace grnn::storage
