#include "storage/graph_file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "graph/network_view.h"
#include "storage/stored_graph.h"

namespace grnn::storage {
namespace {

graph::Graph PaperFig3() {
  return graph::Graph::FromEdges(7, {{0, 3, 5.0},
                                     {0, 4, 3.0},
                                     {0, 1, 2.0},
                                     {1, 4, 2.0},
                                     {1, 5, 3.0},
                                     {2, 3, 4.0},
                                     {2, 5, 3.0},
                                     {2, 6, 5.0},
                                     {4, 6, 6.0}})
      .ValueOrDie();
}

graph::Graph RandomGraph(NodeId n, double p, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(p)) {
        edges.push_back({u, v, rng.Uniform(0.1, 9.9)});
      }
    }
  }
  return graph::Graph::FromEdges(n, edges).ValueOrDie();
}

// Scans through a fresh cursor and materializes the span.
std::vector<AdjEntry> ScanList(const GraphFile& file, BufferPool* pool,
                               NodeId n) {
  graph::NeighborCursor cursor;
  auto span = file.ScanNeighbors(pool, n, cursor);
  EXPECT_TRUE(span.ok()) << span.status().ToString();
  return {span->begin(), span->end()};
}

const char* LayoutSuffix(PageLayout layout) {
  return layout == PageLayout::kV1Packed ? "V1" : "V2";
}

class GraphFileTest
    : public ::testing::TestWithParam<std::tuple<NodeOrder, PageLayout>> {
 protected:
  NodeOrder order() const { return std::get<0>(GetParam()); }
  PageLayout layout() const { return std::get<1>(GetParam()); }
};

TEST_P(GraphFileTest, RoundTripsAdjacency) {
  auto g = PaperFig3();
  MemoryDiskManager disk(128);
  GraphFileOptions opts;
  opts.order = order();
  opts.layout = layout();
  auto file = GraphFile::Build(g, &disk, opts).ValueOrDie();
  BufferPool pool(&disk, 8);

  EXPECT_EQ(file.num_nodes(), g.num_nodes());
  EXPECT_EQ(file.num_edges(), g.num_edges());
  EXPECT_EQ(file.layout(), layout());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    auto nbrs = ScanList(file, &pool, n);
    auto want = g.Neighbors(n);
    ASSERT_EQ(nbrs.size(), want.size()) << "node " << n;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(nbrs[i].node, want[i].node);
      EXPECT_DOUBLE_EQ(nbrs[i].weight, want[i].weight);
    }
  }
  EXPECT_EQ(pool.num_pinned(), 0u);  // ScanList's cursors are gone
}

INSTANTIATE_TEST_SUITE_P(
    AllOrdersAndLayouts, GraphFileTest,
    ::testing::Combine(::testing::Values(NodeOrder::kBfs,
                                         NodeOrder::kNatural,
                                         NodeOrder::kRandom),
                       ::testing::Values(PageLayout::kV1Packed,
                                         PageLayout::kV2Aligned)),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case NodeOrder::kBfs:
          name = "Bfs";
          break;
        case NodeOrder::kNatural:
          name = "Natural";
          break;
        default:
          name = "Random";
          break;
      }
      return name + LayoutSuffix(std::get<1>(info.param));
    });

class GraphFileLayoutTest : public ::testing::TestWithParam<PageLayout> {};

TEST_P(GraphFileLayoutTest, DegreesMatch) {
  auto g = PaperFig3();
  MemoryDiskManager disk(128);
  GraphFileOptions opts;
  opts.layout = GetParam();
  auto file = GraphFile::Build(g, &disk, opts).ValueOrDie();
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(file.Degree(n), g.Degree(n));
  }
}

TEST_P(GraphFileLayoutTest, PaddedListsDoNotStraddlePages) {
  // 128-byte page: v1 holds 10 packed 12-byte entries, v2 holds 7
  // aligned records behind the 16-byte header.
  auto g = RandomGraph(40, 0.2, 11);
  MemoryDiskManager disk(128);
  GraphFileOptions opts;
  opts.layout = GetParam();
  opts.pad_to_page_boundaries = true;
  auto file = GraphFile::Build(g, &disk, opts).ValueOrDie();
  const size_t max_per_page =
      GetParam() == PageLayout::kV1Packed
          ? 128 / kAdjEntryBytes
          : (128 - kV2HeaderBytes) / kV2RecordBytes;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.Degree(n) > 0 && g.Degree(n) <= max_per_page) {
      EXPECT_EQ(file.PagesSpanned(n), 1u) << "node " << n;
    }
  }
}

TEST_P(GraphFileLayoutTest, HugeListSpansMultiplePages) {
  // Star graph: hub 0 with 50 leaves; a 128-byte page holds at most 10
  // (v1) / 7 (v2) entries.
  std::vector<Edge> edges;
  for (NodeId leaf = 1; leaf <= 50; ++leaf) {
    edges.push_back({0, leaf, 1.0});
  }
  auto g = graph::Graph::FromEdges(51, edges).ValueOrDie();
  MemoryDiskManager disk(128);
  GraphFileOptions opts;
  opts.layout = GetParam();
  auto file = GraphFile::Build(g, &disk, opts).ValueOrDie();
  EXPECT_GE(file.PagesSpanned(0), 5u);

  BufferPool pool(&disk, 16);
  auto nbrs = ScanList(file, &pool, 0);
  EXPECT_EQ(nbrs.size(), 50u);
  // All leaves present.
  std::vector<bool> seen(51, false);
  for (const AdjEntry& a : nbrs) {
    seen[a.node] = true;
  }
  for (NodeId leaf = 1; leaf <= 50; ++leaf) {
    EXPECT_TRUE(seen[leaf]);
  }
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST_P(GraphFileLayoutTest, IsolatedNodeReadsEmpty) {
  auto g = graph::Graph::FromEdges(3, {{0, 1, 1.0}}).ValueOrDie();
  MemoryDiskManager disk(128);
  GraphFileOptions opts;
  opts.layout = GetParam();
  auto file = GraphFile::Build(g, &disk, opts).ValueOrDie();
  BufferPool pool(&disk, 4);
  EXPECT_TRUE(ScanList(file, &pool, 2).empty());
}

TEST_P(GraphFileLayoutTest, BfsOrderUsesFewerPagesThanRandomForWalk) {
  // Locality check: reading nodes in BFS-neighborhood order should fault
  // less with BFS packing than with random packing on a path graph.
  std::vector<Edge> edges;
  const NodeId n = 400;
  for (NodeId u = 0; u + 1 < n; ++u) {
    edges.push_back({u, static_cast<NodeId>(u + 1), 1.0});
  }
  auto g = graph::Graph::FromEdges(n, edges).ValueOrDie();

  auto count_faults = [&](NodeOrder order) {
    MemoryDiskManager disk(128);
    GraphFileOptions opts;
    opts.order = order;
    opts.layout = GetParam();
    auto file = GraphFile::Build(g, &disk, opts).ValueOrDie();
    BufferPool pool(&disk, 4);
    graph::NeighborCursor cursor;
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_TRUE(file.ScanNeighbors(&pool, u, cursor).ok());
    }
    return pool.stats().physical_reads;
  };

  EXPECT_LT(count_faults(NodeOrder::kBfs),
            count_faults(NodeOrder::kRandom) / 2);
}

TEST_P(GraphFileLayoutTest, ReadOutOfRangeNodeFails) {
  auto g = PaperFig3();
  MemoryDiskManager disk(128);
  GraphFileOptions opts;
  opts.layout = GetParam();
  auto file = GraphFile::Build(g, &disk, opts).ValueOrDie();
  BufferPool pool(&disk, 4);
  graph::NeighborCursor cursor;
  EXPECT_TRUE(
      file.ScanNeighbors(&pool, 100, cursor).status().IsOutOfRange());
}

INSTANTIATE_TEST_SUITE_P(Layouts, GraphFileLayoutTest,
                         ::testing::Values(PageLayout::kV1Packed,
                                           PageLayout::kV2Aligned),
                         [](const auto& info) {
                           return LayoutSuffix(info.param);
                         });

TEST(GraphFileBasicTest, V1AndV2ServeIdenticalLists) {
  auto g = RandomGraph(60, 0.1, 23);
  MemoryDiskManager disk(256);
  GraphFileOptions opts;
  opts.layout = PageLayout::kV1Packed;
  auto v1 = GraphFile::Build(g, &disk, opts).ValueOrDie();
  opts.layout = PageLayout::kV2Aligned;
  auto v2 = GraphFile::Build(g, &disk, opts).ValueOrDie();
  BufferPool pool(&disk, 32);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(ScanList(v1, &pool, u), ScanList(v2, &pool, u))
        << "node " << u;
  }
}

TEST(GraphFileBasicTest, V2ZeroCopySpanPointsIntoPinnedFrame) {
  auto g = RandomGraph(60, 0.1, 23);
  MemoryDiskManager disk(4096);
  auto file = GraphFile::Build(g, &disk, {}).ValueOrDie();
  ASSERT_EQ(file.layout(), PageLayout::kV2Aligned);
  // 64 frames / 1 shard: lease-friendly, so single-page lists must be
  // served from the frame with a held pin and no scratch growth.
  BufferPool pool(&disk, 64);
  ASSERT_TRUE(pool.lease_friendly());
  graph::NeighborCursor cursor;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.Degree(u) == 0 || file.PagesSpanned(u) != 1) {
      continue;
    }
    auto span = file.ScanNeighbors(&pool, u, cursor);
    ASSERT_TRUE(span.ok());
    EXPECT_EQ(cursor.held_pins(), 1u) << "node " << u;
    EXPECT_EQ(pool.num_pinned(), 1u);
    EXPECT_EQ(cursor.scratch_capacity(), 0u) << "copied, not zero-copy";
  }
  cursor.Reset();
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(GraphFileBasicTest, TinyPoolServesByCopyWithoutHeldPins) {
  auto g = RandomGraph(60, 0.1, 23);
  MemoryDiskManager disk(4096);
  auto file = GraphFile::Build(g, &disk, {}).ValueOrDie();
  BufferPool pool(&disk, 4);  // below kMinFramesPerShardForLease
  ASSERT_FALSE(pool.lease_friendly());
  graph::NeighborCursor cursor;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto span = file.ScanNeighbors(&pool, u, cursor);
    ASSERT_TRUE(span.ok());
    EXPECT_EQ(cursor.held_pins(), 0u);
    EXPECT_EQ(pool.num_pinned(), 0u);
  }
}

TEST(GraphFileBasicTest, StoredGraphMatchesGraphView) {
  auto g = RandomGraph(60, 0.1, 23);
  MemoryDiskManager disk(256);
  auto file = GraphFile::Build(g, &disk, {}).ValueOrDie();
  BufferPool pool(&disk, 16);
  StoredGraph stored(&file, &pool);
  graph::GraphView view(&g);

  EXPECT_EQ(stored.num_nodes(), view.num_nodes());
  EXPECT_EQ(stored.num_edges(), view.num_edges());
  graph::NeighborCursor ca, cb;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto a = stored.Scan(u, ca);
    auto b = view.Scan(u, cb);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(std::equal(a->begin(), a->end(), b->begin(), b->end()))
        << "node " << u;
  }
}

TEST(GraphFileBasicTest, RejectsEmptyGraph) {
  auto g = graph::Graph::FromEdges(0, {}).ValueOrDie();
  MemoryDiskManager disk(128);
  EXPECT_FALSE(GraphFile::Build(g, &disk, {}).ok());
}

TEST(GraphFileBasicTest, RejectsNullDisk) {
  auto g = PaperFig3();
  EXPECT_FALSE(GraphFile::Build(g, nullptr, {}).ok());
}

}  // namespace
}  // namespace grnn::storage
