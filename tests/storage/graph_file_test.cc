#include "storage/graph_file.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/network_view.h"
#include "storage/stored_graph.h"

namespace grnn::storage {
namespace {

graph::Graph PaperFig3() {
  return graph::Graph::FromEdges(7, {{0, 3, 5.0},
                                     {0, 4, 3.0},
                                     {0, 1, 2.0},
                                     {1, 4, 2.0},
                                     {1, 5, 3.0},
                                     {2, 3, 4.0},
                                     {2, 5, 3.0},
                                     {2, 6, 5.0},
                                     {4, 6, 6.0}})
      .ValueOrDie();
}

graph::Graph RandomGraph(NodeId n, double p, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(p)) {
        edges.push_back({u, v, rng.Uniform(0.1, 9.9)});
      }
    }
  }
  return graph::Graph::FromEdges(n, edges).ValueOrDie();
}

class GraphFileTest : public ::testing::TestWithParam<NodeOrder> {};

TEST_P(GraphFileTest, RoundTripsAdjacency) {
  auto g = PaperFig3();
  MemoryDiskManager disk(128);
  GraphFileOptions opts;
  opts.order = GetParam();
  auto file = GraphFile::Build(g, &disk, opts).ValueOrDie();
  BufferPool pool(&disk, 8);

  EXPECT_EQ(file.num_nodes(), g.num_nodes());
  EXPECT_EQ(file.num_edges(), g.num_edges());
  std::vector<AdjEntry> nbrs;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    ASSERT_TRUE(file.ReadNeighbors(&pool, n, &nbrs).ok());
    auto want = g.Neighbors(n);
    ASSERT_EQ(nbrs.size(), want.size()) << "node " << n;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(nbrs[i].node, want[i].node);
      EXPECT_DOUBLE_EQ(nbrs[i].weight, want[i].weight);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, GraphFileTest,
                         ::testing::Values(NodeOrder::kBfs,
                                           NodeOrder::kNatural,
                                           NodeOrder::kRandom),
                         [](const auto& info) {
                           switch (info.param) {
                             case NodeOrder::kBfs:
                               return "Bfs";
                             case NodeOrder::kNatural:
                               return "Natural";
                             default:
                               return "Random";
                           }
                         });

TEST(GraphFileBasicTest, DegreesMatch) {
  auto g = PaperFig3();
  MemoryDiskManager disk(128);
  auto file = GraphFile::Build(g, &disk, {}).ValueOrDie();
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(file.Degree(n), g.Degree(n));
  }
}

TEST(GraphFileBasicTest, PaddedListsDoNotStraddlePages) {
  // Page of 128 bytes holds 10 entries of 12 bytes (120) + 8 padding.
  auto g = RandomGraph(40, 0.2, 11);
  MemoryDiskManager disk(128);
  GraphFileOptions opts;
  opts.pad_to_page_boundaries = true;
  auto file = GraphFile::Build(g, &disk, opts).ValueOrDie();
  const size_t max_per_page = 128 / kAdjEntryBytes;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.Degree(n) > 0 && g.Degree(n) <= max_per_page) {
      EXPECT_EQ(file.PagesSpanned(n), 1u) << "node " << n;
    }
  }
}

TEST(GraphFileBasicTest, HugeListSpansMultiplePages) {
  // Star graph: hub 0 with 50 leaves; page holds 10 entries.
  std::vector<Edge> edges;
  for (NodeId leaf = 1; leaf <= 50; ++leaf) {
    edges.push_back({0, leaf, 1.0});
  }
  auto g = graph::Graph::FromEdges(51, edges).ValueOrDie();
  MemoryDiskManager disk(128);
  auto file = GraphFile::Build(g, &disk, {}).ValueOrDie();
  EXPECT_GE(file.PagesSpanned(0), 5u);

  BufferPool pool(&disk, 16);
  std::vector<AdjEntry> nbrs;
  ASSERT_TRUE(file.ReadNeighbors(&pool, 0, &nbrs).ok());
  EXPECT_EQ(nbrs.size(), 50u);
  // All leaves present.
  std::vector<bool> seen(51, false);
  for (const AdjEntry& a : nbrs) {
    seen[a.node] = true;
  }
  for (NodeId leaf = 1; leaf <= 50; ++leaf) {
    EXPECT_TRUE(seen[leaf]);
  }
}

TEST(GraphFileBasicTest, IsolatedNodeReadsEmpty) {
  auto g = graph::Graph::FromEdges(3, {{0, 1, 1.0}}).ValueOrDie();
  MemoryDiskManager disk(128);
  auto file = GraphFile::Build(g, &disk, {}).ValueOrDie();
  BufferPool pool(&disk, 4);
  std::vector<AdjEntry> nbrs;
  ASSERT_TRUE(file.ReadNeighbors(&pool, 2, &nbrs).ok());
  EXPECT_TRUE(nbrs.empty());
}

TEST(GraphFileBasicTest, BfsOrderUsesFewerPagesThanRandomForWalk) {
  // Locality check: reading nodes in BFS-neighborhood order should fault
  // less with BFS packing than with random packing on a path graph.
  std::vector<Edge> edges;
  const NodeId n = 400;
  for (NodeId u = 0; u + 1 < n; ++u) {
    edges.push_back({u, static_cast<NodeId>(u + 1), 1.0});
  }
  auto g = graph::Graph::FromEdges(n, edges).ValueOrDie();

  auto count_faults = [&](NodeOrder order) {
    MemoryDiskManager disk(128);
    GraphFileOptions opts;
    opts.order = order;
    auto file = GraphFile::Build(g, &disk, opts).ValueOrDie();
    BufferPool pool(&disk, 4);
    std::vector<AdjEntry> nbrs;
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_TRUE(file.ReadNeighbors(&pool, u, &nbrs).ok());
    }
    return pool.stats().physical_reads;
  };

  EXPECT_LT(count_faults(NodeOrder::kBfs),
            count_faults(NodeOrder::kRandom) / 2);
}

TEST(GraphFileBasicTest, StoredGraphMatchesGraphView) {
  auto g = RandomGraph(60, 0.1, 23);
  MemoryDiskManager disk(256);
  auto file = GraphFile::Build(g, &disk, {}).ValueOrDie();
  BufferPool pool(&disk, 16);
  StoredGraph stored(&file, &pool);
  graph::GraphView view(&g);

  EXPECT_EQ(stored.num_nodes(), view.num_nodes());
  EXPECT_EQ(stored.num_edges(), view.num_edges());
  std::vector<AdjEntry> a, b;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_TRUE(stored.GetNeighbors(u, &a).ok());
    ASSERT_TRUE(view.GetNeighbors(u, &b).ok());
    EXPECT_EQ(a, b) << "node " << u;
  }
}

TEST(GraphFileBasicTest, RejectsEmptyGraph) {
  auto g = graph::Graph::FromEdges(0, {}).ValueOrDie();
  MemoryDiskManager disk(128);
  EXPECT_FALSE(GraphFile::Build(g, &disk, {}).ok());
}

TEST(GraphFileBasicTest, RejectsNullDisk) {
  auto g = PaperFig3();
  EXPECT_FALSE(GraphFile::Build(g, nullptr, {}).ok());
}

TEST(GraphFileBasicTest, ReadOutOfRangeNodeFails) {
  auto g = PaperFig3();
  MemoryDiskManager disk(128);
  auto file = GraphFile::Build(g, &disk, {}).ValueOrDie();
  BufferPool pool(&disk, 4);
  std::vector<AdjEntry> nbrs;
  EXPECT_TRUE(file.ReadNeighbors(&pool, 100, &nbrs).IsOutOfRange());
}

}  // namespace
}  // namespace grnn::storage
