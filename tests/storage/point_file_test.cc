#include "storage/point_file.h"

#include <gtest/gtest.h>

namespace grnn::storage {
namespace {

TEST(PointFileTest, EmptyFileHasNoPoints) {
  MemoryDiskManager disk(128);
  auto file = PointFile::Build(&disk, {}).ValueOrDie();
  EXPECT_EQ(file.num_points(), 0u);
  EXPECT_FALSE(file.EdgeHasPoints(0, 1));
  BufferPool pool(&disk, 2);
  std::vector<EdgePointRecord> out;
  ASSERT_TRUE(file.ReadEdgePoints(&pool, 0, 1, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(pool.stats().logical_reads, 0u);  // index-only, no I/O
}

TEST(PointFileTest, RoundTripsSortedByPos) {
  MemoryDiskManager disk(128);
  std::vector<PointFile::EdgePoints> groups = {
      {2, 6, {{1, 4.0}, {0, 1.0}, {2, 2.5}}},
  };
  auto file = PointFile::Build(&disk, groups).ValueOrDie();
  EXPECT_EQ(file.num_points(), 3u);
  BufferPool pool(&disk, 2);
  std::vector<EdgePointRecord> out;
  ASSERT_TRUE(file.ReadEdgePoints(&pool, 2, 6, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].point, 0u);
  EXPECT_DOUBLE_EQ(out[0].pos, 1.0);
  EXPECT_EQ(out[1].point, 2u);
  EXPECT_EQ(out[2].point, 1u);
}

TEST(PointFileTest, LookupIsOrientationInsensitive) {
  MemoryDiskManager disk(128);
  auto file =
      PointFile::Build(&disk, {{1, 3, {{7, 0.5}}}}).ValueOrDie();
  EXPECT_TRUE(file.EdgeHasPoints(1, 3));
  EXPECT_TRUE(file.EdgeHasPoints(3, 1));
  BufferPool pool(&disk, 2);
  std::vector<EdgePointRecord> fwd, rev;
  ASSERT_TRUE(file.ReadEdgePoints(&pool, 1, 3, &fwd).ok());
  ASSERT_TRUE(file.ReadEdgePoints(&pool, 3, 1, &rev).ok());
  EXPECT_EQ(fwd, rev);
  ASSERT_EQ(fwd.size(), 1u);
  EXPECT_EQ(fwd[0].point, 7u);
}

TEST(PointFileTest, ManyEdgesIndependent) {
  MemoryDiskManager disk(128);
  std::vector<PointFile::EdgePoints> groups;
  for (NodeId u = 0; u < 25; ++u) {
    groups.push_back(
        {u, static_cast<NodeId>(u + 100), {{u, 0.1}, {u + 1000, 1.0}}});
  }
  auto file = PointFile::Build(&disk, groups).ValueOrDie();
  EXPECT_EQ(file.num_points(), 50u);
  EXPECT_EQ(file.num_edges_with_points(), 25u);
  BufferPool pool(&disk, 4);
  std::vector<EdgePointRecord> out;
  for (NodeId u = 0; u < 25; ++u) {
    ASSERT_TRUE(
        file.ReadEdgePoints(&pool, u, u + 100, &out).ok());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].point, u);
  }
}

TEST(PointFileTest, LargeGroupSpansPages) {
  MemoryDiskManager disk(128);  // 10 records per page
  PointFile::EdgePoints big{0, 1, {}};
  for (uint32_t i = 0; i < 40; ++i) {
    big.points.push_back({i, static_cast<double>(i)});
  }
  auto file = PointFile::Build(&disk, {big}).ValueOrDie();
  BufferPool pool(&disk, 8);
  std::vector<EdgePointRecord> out;
  ASSERT_TRUE(file.ReadEdgePoints(&pool, 0, 1, &out).ok());
  ASSERT_EQ(out.size(), 40u);
  for (uint32_t i = 0; i < 40; ++i) {
    EXPECT_EQ(out[i].point, i);
  }
  EXPECT_GE(pool.stats().physical_reads, 4u);
}

TEST(PointFileTest, ReadChargesIoOnlyForPresentEdges) {
  MemoryDiskManager disk(128);
  auto file =
      PointFile::Build(&disk, {{0, 1, {{3, 0.25}}}}).ValueOrDie();
  BufferPool pool(&disk, 2);
  std::vector<EdgePointRecord> out;
  ASSERT_TRUE(file.ReadEdgePoints(&pool, 5, 6, &out).ok());
  EXPECT_EQ(pool.stats().logical_reads, 0u);
  ASSERT_TRUE(file.ReadEdgePoints(&pool, 0, 1, &out).ok());
  EXPECT_EQ(pool.stats().logical_reads, 1u);
}

TEST(PointFileTest, RejectsBadInput) {
  MemoryDiskManager disk(128);
  // u >= v
  EXPECT_FALSE(PointFile::Build(&disk, {{3, 1, {{0, 0.1}}}}).ok());
  EXPECT_FALSE(PointFile::Build(&disk, {{1, 1, {{0, 0.1}}}}).ok());
  // empty group
  EXPECT_FALSE(PointFile::Build(&disk, {{0, 1, {}}}).ok());
  // duplicate edge
  EXPECT_FALSE(
      PointFile::Build(&disk, {{0, 1, {{0, 0.1}}}, {0, 1, {{1, 0.2}}}})
          .ok());
  // null disk
  EXPECT_FALSE(PointFile::Build(nullptr, {{0, 1, {{0, 0.1}}}}).ok());
}

}  // namespace
}  // namespace grnn::storage
