// Copyright (c) GRNN authors.
// Fault-injection decorators for crash-recovery testing (PR 7).
//
// FaultInjectingDiskManager wraps any DiskManager and models the two
// things a real device does that MemoryDiskManager cannot: it LOSES
// unsynced writes on power failure, and it can TEAR the write in
// flight. Writes land in an unsynced overlay; Sync applies the overlay
// to the base device. A shared CrashController counts every write
// point (each WritePage and each Sync call, across all devices sharing
// the controller, in one global order) and can be armed to fail at the
// Nth point:
//
//   kFailStop   the call reports IOError and the whole controller
//               group goes dead (the process crashed mid-call);
//   kTornWrite  a prefix of the page image reaches the platter before
//               the crash (WritePage points only; on a Sync point it
//               degrades to kFailStop);
//   kTransient  the call reports IOError once, the device stays alive
//               (an EIO the caller is expected to surface or retry).
//
// When the controller trips, every registered device settles its
// overlay per the armed CrashSurvival mode: kLoseUnsynced drops
// everything since the last Sync (the harsh, deterministic bound —
// this is the mode that catches missing-fsync bugs over a
// MemoryDiskManager base), kKeepUnsynced applies it (the writes
// happened to be on the platter already). After the trip, every call
// on every grouped device fails; the BASE devices then hold exactly
// the surviving state, and recovery reopens them directly.
//
// Usage: the crash harness enumerates points by running the workload
// once with counting enabled to learn the total N, then re-runs a
// fresh world for each point i in [0, N), armed, and recovers.

#ifndef GRNN_TESTS_STORAGE_FAULT_INJECTION_H_
#define GRNN_TESTS_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/disk_manager.h"

namespace grnn::storage::testing {

enum class FaultAction {
  kFailStop,
  kTornWrite,
  kTransient,
};

enum class CrashSurvival {
  kLoseUnsynced,
  kKeepUnsynced,
};

class FaultInjectingDiskManager;

/// \brief Shared trip wire for a group of fault-injecting devices.
///
/// Thread-safe: the counter and the trip decision sit under one mutex,
/// so concurrent writers (the multithreaded kill test) observe exactly
/// one trip. Devices register themselves on construction and must
/// outlive the controller's last trip.
class CrashController {
 public:
  /// Starts counting write points (they are NOT counted while
  /// disabled, so world construction stays out of the enumeration).
  /// Resets the counter.
  void StartCounting();

  /// Arms the controller: the `point`-th counted write point (0-based
  /// from this call; the counter resets) performs `action`. Counting
  /// is implied.
  void ArmAt(uint64_t point, FaultAction action,
             CrashSurvival survival = CrashSurvival::kLoseUnsynced);

  /// Stops counting/injection (does not clear a crash).
  void Disarm();

  /// Write points counted since StartCounting/ArmAt.
  uint64_t points_seen() const;
  /// True once an armed point tripped with kFailStop/kTornWrite.
  bool crashed() const;

  /// Bytes of the new image a torn write persists (default: half a
  /// page; clamped to the page size at trip time). The remainder keeps
  /// the old content — the prefix-tear model matches an append-only
  /// tail rewrite, where new and old images agree on the durable
  /// prefix.
  void set_tear_bytes(size_t bytes);

  /// Forces a crash NOW (as if an armed kFailStop point tripped), with
  /// the given survival mode. Used by the kill-mid-burst test to crash
  /// from a watcher thread at an arbitrary moment.
  void CrashNow(CrashSurvival survival);

 private:
  friend class FaultInjectingDiskManager;

  void Register(FaultInjectingDiskManager* device);
  void Unregister(FaultInjectingDiskManager* device);

  /// Called by a device at each write point, under mu_ via Observe().
  /// Returns the action to perform at this point (kFailStop/kTornWrite
  /// mean: settle every device and go dead).
  struct PointDecision {
    bool crashed = false;  // group already dead: fail the call
    bool trip = false;     // this call is the armed point
    FaultAction action = FaultAction::kFailStop;
    CrashSurvival survival = CrashSurvival::kLoseUnsynced;
    size_t tear_bytes = SIZE_MAX;
  };
  PointDecision Observe();
  /// Settles every registered device. Caller holds mu_.
  void SettleLocked(CrashSurvival survival);

  mutable std::mutex mu_;
  std::vector<FaultInjectingDiskManager*> devices_;
  bool counting_ = false;
  bool armed_ = false;
  bool crashed_ = false;
  uint64_t counter_ = 0;
  uint64_t trip_point_ = 0;
  FaultAction action_ = FaultAction::kFailStop;
  CrashSurvival survival_ = CrashSurvival::kLoseUnsynced;
  size_t tear_bytes_ = SIZE_MAX;  // SIZE_MAX = half the page
};

/// \brief Decorator that buffers writes until Sync and crashes on
/// command. Satisfies the DiskManager concurrency contract (same-page
/// calls serialized by the caller; distinct-page calls concurrent) by
/// serializing on one internal mutex.
class FaultInjectingDiskManager final : public DiskManager {
 public:
  /// \param base the real device; must outlive this. \param controller
  /// shared trip wire; must outlive this.
  FaultInjectingDiskManager(DiskManager* base, CrashController* controller);
  ~FaultInjectingDiskManager() override;

  FaultInjectingDiskManager(const FaultInjectingDiskManager&) = delete;
  FaultInjectingDiskManager& operator=(const FaultInjectingDiskManager&) =
      delete;

  size_t page_size() const override { return base_->page_size(); }
  /// Includes unsynced allocations (the caller sees its own writes).
  size_t num_pages() const override;
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, uint8_t* out) override;
  Status WritePage(PageId id, const uint8_t* data) override;
  Status Sync() override;

  /// When false, an armed kTornWrite that lands on THIS device degrades
  /// to fail-stop (nothing torn reaches the base). The prefix-tear
  /// model is only sound for devices whose recovery tolerates it — the
  /// append-only WAL tail truncates a torn record by CRC, but a torn
  /// DATA page carries the new header (and page LSN) over stale list
  /// bytes, which redo-only logging without full-page images cannot
  /// repair; the crash harness therefore marks the data device
  /// ineligible. Set before the run (not thread-safe against trips).
  void set_tear_eligible(bool eligible) { tear_eligible_ = eligible; }

  /// Unsynced page images currently buffered (tests assert on it).
  size_t unsynced_pages() const;

 private:
  friend class CrashController;

  /// Applies or drops the overlay; called by the controller at trip
  /// time (controller mutex held; mu_ taken here — lock order is
  /// always controller → device).
  void Settle(CrashSurvival survival);
  /// Persists a torn image of (id, data): new-image prefix over the
  /// old content, straight into the base device (a torn sector is on
  /// the platter regardless of what the drive cache lost).
  void PersistTorn(PageId id, const uint8_t* data, size_t tear_bytes);
  Status ApplyOverlayLocked();

  DiskManager* base_;
  CrashController* controller_;
  mutable std::mutex mu_;
  /// Pages written since the last Sync (id -> full image).
  std::unordered_map<PageId, std::vector<uint8_t>> overlay_;
  /// Pages allocated since the last Sync (ids from base_size_ up).
  size_t unsynced_allocs_ = 0;
  /// base_->num_pages() at the last settle point.
  size_t synced_pages_ = 0;
  bool tear_eligible_ = true;
};

}  // namespace grnn::storage::testing

#endif  // GRNN_TESTS_STORAGE_FAULT_INJECTION_H_
