// Crash-point-enumerating recovery suite (PR 7, the tentpole proof).
//
// CountWritePoints learns how many write points (page writes + fsyncs,
// across the data AND log devices) a seeded update burst generates;
// the enumeration then re-runs a fresh identical world once per point,
// injects a crash exactly there, recovers from the surviving bytes and
// checks every durability invariant (see crash_harness.h). Alternating
// survival modes cover both the harsh power-cut (unsynced writes lost)
// and the lucky one (drive cache reached the platter) — recovery must
// be exact either way, because fsync is the only boundary the protocol
// is allowed to rely on.
//
// Registered under the `stress` and `crash` ctest labels; the ASan and
// TSan CI jobs run the same enumeration under their runtimes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

#include "crash_harness.h"

namespace grnn::core::testing {
namespace {

using storage::testing::CrashController;
using storage::testing::CrashSurvival;
using storage::testing::FaultAction;

// Every write point of the default world, fail-stop. Survival
// alternates by parity; the full query matrix runs on a sample of the
// recovered worlds (every cycle already proves store exactness against
// the rebuild oracle).
TEST(CrashRecoveryTest, FailStopEnumerationCoversEveryWritePoint) {
  CrashWorldOptions opts;
  opts.seed = 3;
  const uint64_t n = CountWritePoints(opts);
  ASSERT_GE(n, 100u) << "burst too small to satisfy the enumeration "
                        "floor; raise ops";
  uint64_t tripped = 0;
  for (uint64_t p = 0; p < n; ++p) {
    const CrashSurvival survival = (p % 2 == 0)
                                       ? CrashSurvival::kLoseUnsynced
                                       : CrashSurvival::kKeepUnsynced;
    CrashCycleReport report;
    const Status s =
        RunCrashCycle(opts, p, FaultAction::kFailStop, survival,
                      /*check_queries=*/(p % 16 == 0), &report);
    ASSERT_TRUE(s.ok()) << "crash point " << p << "/" << n << ": "
                        << s.ToString();
    tripped += report.tripped ? 1 : 0;
  }
  // Determinism check: the armed run reaches every counted point.
  EXPECT_EQ(tripped, n);
}

// A second geometry (rectangular grid, deeper lists, longer burst) so
// the enumeration is not a property of one layout.
TEST(CrashRecoveryTest, FailStopEnumerationOnASecondWorld) {
  CrashWorldOptions opts;
  opts.seed = 8;  // even seed: unit weights (distance-tie pressure)
  opts.grid_rows = 5;
  opts.grid_cols = 9;
  opts.num_points = 12;
  opts.num_sites = 8;
  opts.num_edge_points = 10;
  opts.capacity = 5;
  opts.pool_frames = 6;  // more eviction traffic on the fault path
  opts.ops = 44;
  const uint64_t n = CountWritePoints(opts);
  ASSERT_GE(n, 100u);
  for (uint64_t p = 0; p < n; ++p) {
    CrashCycleReport report;
    const Status s = RunCrashCycle(opts, p, FaultAction::kFailStop,
                                   CrashSurvival::kLoseUnsynced,
                                   /*check_queries=*/(p % 32 == 0),
                                   &report);
    ASSERT_TRUE(s.ok()) << "crash point " << p << "/" << n << ": "
                        << s.ToString();
  }
}

// Torn writes: the armed point persists only a prefix of the page
// image. On the log device that is a torn tail record (CRC truncates
// it on reopen); on the data device the harness degrades the tear to
// fail-stop, because a prefix-torn data page is exactly what redo-only
// logging cannot repair (see fault_injection.h). Sampled — each torn
// cycle still runs the full invariant set.
TEST(CrashRecoveryTest, TornWriteEnumerationSampled) {
  CrashWorldOptions opts;
  opts.seed = 4;
  const uint64_t n = CountWritePoints(opts);
  ASSERT_GE(n, 100u);
  uint64_t truncated_tails = 0;
  for (uint64_t p = 0; p < n; p += 3) {
    CrashCycleReport report;
    const Status s = RunCrashCycle(opts, p, FaultAction::kTornWrite,
                                   CrashSurvival::kLoseUnsynced,
                                   /*check_queries=*/(p % 15 == 0),
                                   &report);
    ASSERT_TRUE(s.ok()) << "torn point " << p << "/" << n << ": "
                        << s.ToString();
    truncated_tails += report.tail_truncated ? 1 : 0;
  }
  // The sample must actually have torn some log tails, or this test
  // proves nothing about truncate-and-continue.
  EXPECT_GE(truncated_tails, 1u);
}

// A transient write error (EIO without a crash) fails exactly one
// update. Depending on where it landed, either the engine rolled the
// op back cleanly and the burst resumes, or the store poisoned itself
// (the failure passed the point of clean rollback — a zombie record or
// an unrollbackable delete) and refuses further journaling. EITHER
// way, crash recovery afterwards must be exact: every acknowledged
// update durable, stores oracle-exact, redo idempotent. Enumerating
// the transient point over a window covers both outcomes.
TEST(CrashRecoveryTest, TransientWriteFaultsNeverCorruptRecovery) {
  for (uint64_t point = 0; point < 24; point += 4) {
    CrashController ctl;
    CrashWorldOptions opts;
    opts.seed = 9;
    CrashWorld world(opts, &ctl);
    std::vector<AckedUpdate> acked;
    ctl.ArmAt(point, FaultAction::kTransient,
              CrashSurvival::kLoseUnsynced);
    const Status first = world.RunBurst(&acked);
    ASSERT_FALSE(first.ok());  // exactly one op failed
    ASSERT_FALSE(ctl.crashed());
    const size_t acked_before = acked.size();
    const Status rest = world.RunBurst(&acked);
    if (rest.ok()) {
      // Clean rollback: the world kept serving and journaling.
      EXPECT_GT(acked.size(), acked_before) << "point " << point;
    } else {
      // Poisoned store: every further update on that domain must be
      // refused (FailedPrecondition), never silently misjournaled.
      EXPECT_EQ(rest.code(), StatusCode::kFailedPrecondition)
          << "point " << point << ": " << rest.ToString();
    }
    ctl.Disarm();
    ctl.CrashNow(CrashSurvival::kLoseUnsynced);
    auto rw = world.Recover();
    ASSERT_TRUE(rw.ok())
        << "point " << point << ": " << rw.status().ToString();
    // CheckAckedDurable (not the prefix form): a zombie record from
    // the failed commit may legitimately sit between acknowledged
    // records in the log; it is self-contained and replays
    // consistently.
    const Status durable = CheckAckedDurable(**rw, acked);
    EXPECT_TRUE(durable.ok()) << "point " << point << ": "
                              << durable.ToString();
    const Status exact = CheckStoresMatchRebuild(**rw);
    EXPECT_TRUE(exact.ok()) << "point " << point << ": "
                            << exact.ToString();
    const Status idem = CheckRecoveryIdempotent(world);
    EXPECT_TRUE(idem.ok()) << "point " << point << ": "
                           << idem.ToString();
  }
}

// The recovered world is not a read-only artifact: its engines accept
// further updates (journaled into the reopened log), stay oracle-exact,
// and a checkpoint through the recovered pool empties the log.
TEST(CrashRecoveryTest, RecoveredWorldStaysLive) {
  CrashController ctl;
  CrashWorldOptions opts;
  opts.seed = 5;
  CrashWorld world(opts, &ctl);
  std::vector<AckedUpdate> acked;
  ASSERT_TRUE(world.RunBurst(&acked).ok());
  ctl.CrashNow(CrashSurvival::kLoseUnsynced);

  auto recovered = world.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredWorld& rw = **recovered;
  const Status checked = CheckRecovered(world, rw, acked);
  ASSERT_TRUE(checked.ok()) << checked.ToString();

  // Apply fresh updates through the recovered engines.
  size_t applied = 0;
  for (NodeId node = 0; node < rw.g.num_nodes() && applied < 4; ++node) {
    if (rw.points.Contains(node) || rw.sites.Contains(node)) {
      continue;
    }
    auto r = rw.node_engine->ApplyUpdate(UpdateSpec::InsertPoint(node));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    applied++;
  }
  ASSERT_EQ(applied, 4u);
  auto live = rw.points.LivePoints();
  ASSERT_FALSE(live.empty());
  auto del = rw.node_engine->ApplyUpdate(UpdateSpec::DeletePoint(
      live[live.size() / 2]));
  ASSERT_TRUE(del.ok()) << del.status().ToString();

  const Status exact = CheckStoresMatchRebuild(rw);
  EXPECT_TRUE(exact.ok()) << exact.ToString();
  const Status queries = CheckQueryMatrix(rw, opts.seed + 1);
  EXPECT_TRUE(queries.ok()) << queries.ToString();

  // Checkpoint the recovered world: after it, the log is empty and a
  // reopen replays nothing.
  ASSERT_TRUE(storage::CheckpointThrough(*rw.pool, *rw.wal).ok());
  auto wal2 = storage::Wal::Open(&world.wal_base());
  ASSERT_TRUE(wal2.ok());
  EXPECT_TRUE(wal2->recovered().empty());
  EXPECT_FALSE(wal2->tail_truncated());
}

// Kill-mid-burst, multithreaded: three updaters (data points, sites,
// edge points — each owning its domain and touching nothing else) are
// killed from a watcher thread at an arbitrary moment between write
// points. No acknowledged update may be lost, per-domain lsns must be
// monotone (ack order == log order within a domain), and the recovered
// stores must match the rebuild oracle.
TEST(CrashRecoveryTest, KillMidBurstLosesNoAcknowledgedUpdate) {
  CrashController ctl;
  CrashWorldOptions opts;
  opts.seed = 6;
  opts.grid_rows = 8;
  opts.grid_cols = 8;
  opts.num_points = 12;
  opts.num_sites = 10;
  opts.num_edge_points = 10;
  opts.pool_frames = 12;
  CrashWorld world(opts, &ctl);

  // Disjoint node candidates per node-domain thread, fixed before the
  // threads start (they must not read each other's live point sets).
  std::vector<NodeId> point_nodes, site_nodes;
  for (NodeId n = 0; n < world.graph().num_nodes(); ++n) {
    if (world.points().Contains(n) || world.sites().Contains(n)) {
      continue;
    }
    ((n % 2 == 0) ? point_nodes : site_nodes).push_back(n);
  }
  ASSERT_GE(point_nodes.size(), 4u);
  ASSERT_GE(site_nodes.size(), 4u);
  const std::vector<Edge> edges = world.graph().CollectEdges();

  std::atomic<size_t> total_acked{0};
  std::vector<AckedUpdate> acked_by[3];

  // Toggles its own nodes: insert at a free candidate, delete a point
  // it inserted itself — never reads shared world state.
  auto node_worker = [&](int slot, const std::vector<NodeId>& cands,
                         bool sites) {
    Rng rng(opts.seed * 7919 + static_cast<uint64_t>(slot));
    DurableKnnStore& store =
        sites ? world.sites_store() : world.points_store();
    std::unordered_map<NodeId, PointId> mine;
    while (true) {
      const NodeId n = cands[rng.UniformInt(cands.size())];
      UpdateSpec spec;
      const auto it = mine.find(n);
      if (it == mine.end()) {
        spec = sites ? UpdateSpec::InsertSite(n)
                     : UpdateSpec::InsertPoint(n);
      } else {
        spec = sites ? UpdateSpec::DeleteSite(it->second)
                     : UpdateSpec::DeletePoint(it->second);
      }
      auto r = world.node_engine().ApplyUpdate(spec);
      if (!r.ok()) {
        break;  // the crash landed
      }
      if (it == mine.end()) {
        mine.emplace(n, r->point);
      } else {
        mine.erase(it);
      }
      acked_by[slot].push_back(
          {spec, r->point, store.last_commit_lsn(), store.store_id()});
      total_acked.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto edge_worker = [&](int slot) {
    Rng rng(opts.seed * 7919 + static_cast<uint64_t>(slot));
    DurableKnnStore& store = world.edge_store();
    std::vector<PointId> mine;
    while (true) {
      UpdateSpec spec;
      if (mine.empty() || rng.UniformInt(2) == 0) {
        const Edge& e = edges[rng.UniformInt(edges.size())];
        spec = UpdateSpec::InsertEdgePoint(
            {e.u, e.v, rng.Uniform(0.0, e.w)});
      } else {
        const size_t i = rng.UniformInt(mine.size());
        spec = UpdateSpec::DeleteEdgePoint(mine[i]);
        std::swap(mine[i], mine.back());
      }
      auto r = world.edge_engine().ApplyUpdate(spec);
      if (!r.ok()) {
        break;
      }
      if (spec.op == UpdateSpec::Op::kInsert) {
        mine.push_back(r->point);
      } else {
        mine.pop_back();
      }
      acked_by[slot].push_back(
          {spec, r->point, store.last_commit_lsn(), store.store_id()});
      total_acked.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::thread tp(node_worker, 0, std::cref(point_nodes), false);
  std::thread ts(node_worker, 1, std::cref(site_nodes), true);
  std::thread te(edge_worker, 2);

  // Kill once the burst is deep enough (bounded wait, then kill
  // regardless — the invariants hold at any kill moment).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (total_acked.load(std::memory_order_relaxed) < 60 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ctl.CrashNow(CrashSurvival::kLoseUnsynced);
  tp.join();
  ts.join();
  te.join();

  std::vector<AckedUpdate> acked;
  for (const auto& part : acked_by) {
    // Within one domain, acknowledgement order must equal log order.
    for (size_t i = 1; i < part.size(); ++i) {
      ASSERT_LT(part[i - 1].lsn, part[i].lsn);
    }
    acked.insert(acked.end(), part.begin(), part.end());
  }
  ASSERT_GE(acked.size(), 60u);

  auto recovered = world.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredWorld& rw = **recovered;
  const Status durable = CheckAckedDurable(rw, acked);
  EXPECT_TRUE(durable.ok()) << durable.ToString();
  const Status exact = CheckStoresMatchRebuild(rw);
  EXPECT_TRUE(exact.ok()) << exact.ToString();
  const Status idem = CheckRecoveryIdempotent(world);
  EXPECT_TRUE(idem.ok()) << idem.ToString();
}

}  // namespace
}  // namespace grnn::core::testing
