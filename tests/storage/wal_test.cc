// WAL edge cases: empty logs, group flush, page-straddling records,
// corrupt/torn tails (truncate-and-continue), checkpoint rotation, and
// redo idempotence (recover-twice == recover-once) for both KnnFile
// updates and LabelFile rewrites.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "core/durability.h"
#include "fault_injection.h"
#include "graph/graph.h"
#include "graph/network_view.h"
#include "index/hub_label.h"
#include "index/label_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/knn_file.h"

namespace grnn::storage {
namespace {

using testing::CrashController;
using testing::CrashSurvival;
using testing::FaultAction;
using testing::FaultInjectingDiskManager;

constexpr size_t kPageSize = 256;

std::vector<uint8_t> Payload(size_t len, uint8_t seed) {
  std::vector<uint8_t> p(len);
  for (size_t i = 0; i < len; ++i) {
    p[i] = static_cast<uint8_t>(seed + i);
  }
  return p;
}

// Flips one byte at `region_off` within the record region (page 1+).
void CorruptRegionByte(DiskManager* disk, size_t region_off) {
  const size_t ps = disk->page_size();
  const PageId page = static_cast<PageId>(1 + region_off / ps);
  std::vector<uint8_t> img(ps, 0);
  ASSERT_TRUE(disk->ReadPage(page, img.data()).ok());
  img[region_off % ps] ^= 0xFF;
  ASSERT_TRUE(disk->WritePage(page, img.data()).ok());
  ASSERT_TRUE(disk->Sync().ok());
}

TEST(WalTest, CreateThenOpenEmptyLog) {
  MemoryDiskManager disk(kPageSize);
  {
    auto wal = Wal::Create(&disk);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal->next_lsn(), 1u);
    EXPECT_EQ(wal->durable_lsn(), 0u);
    EXPECT_TRUE(wal->recovered().empty());
  }
  auto reopened = Wal::Open(&disk);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->next_lsn(), 1u);
  EXPECT_EQ(reopened->durable_lsn(), 0u);
  EXPECT_TRUE(reopened->recovered().empty());
  EXPECT_FALSE(reopened->tail_truncated());
}

TEST(WalTest, OpenRejectsForeignDevices) {
  MemoryDiskManager empty(kPageSize);
  EXPECT_FALSE(Wal::Open(&empty).ok());

  MemoryDiskManager garbage(kPageSize);
  auto id = garbage.AllocatePage();
  ASSERT_TRUE(id.ok());
  auto junk = Payload(kPageSize, 0x5A);
  ASSERT_TRUE(garbage.WritePage(*id, junk.data()).ok());
  EXPECT_FALSE(Wal::Open(&garbage).ok());
}

TEST(WalTest, RoundTripsRecordsAcrossPageBoundaries) {
  MemoryDiskManager disk(kPageSize);
  auto wal = Wal::Create(&disk);
  ASSERT_TRUE(wal.ok());

  // Sizes chosen to pack, straddle one boundary, and span multiple
  // pages; one empty payload exercises the header-only frame.
  const std::vector<size_t> sizes = {10, 0, kPageSize, 3 * kPageSize + 7};
  std::vector<uint64_t> lsns;
  for (size_t i = 0; i < sizes.size(); ++i) {
    auto payload = Payload(sizes[i], static_cast<uint8_t>(i));
    auto lsn = wal->Append(WalRecordType::kUpdate,
                           /*store_id=*/static_cast<uint32_t>(i),
                           payload);
    ASSERT_TRUE(lsn.ok());
    lsns.push_back(*lsn);
  }
  EXPECT_EQ(lsns, (std::vector<uint64_t>{1, 2, 3, 4}));
  auto flushed = wal->Flush();
  ASSERT_TRUE(flushed.ok());
  EXPECT_TRUE(*flushed);  // I/O happened
  EXPECT_EQ(wal->durable_lsn(), 4u);
  // Second flush with nothing pending: no I/O.
  auto again = wal->Flush();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);

  auto reopened = Wal::Open(&disk);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(reopened->tail_truncated());
  ASSERT_EQ(reopened->recovered().size(), sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    const WalRecord& rec = reopened->recovered()[i];
    EXPECT_EQ(rec.lsn, lsns[i]);
    EXPECT_EQ(rec.type, static_cast<uint16_t>(WalRecordType::kUpdate));
    EXPECT_EQ(rec.store_id, static_cast<uint32_t>(i));
    EXPECT_EQ(rec.payload, Payload(sizes[i], static_cast<uint8_t>(i)));
  }
  EXPECT_EQ(reopened->next_lsn(), 5u);
  EXPECT_EQ(reopened->durable_lsn(), 4u);
}

TEST(WalTest, UnflushedRecordsDoNotSurviveReopen) {
  MemoryDiskManager disk(kPageSize);
  auto wal = Wal::Create(&disk);
  ASSERT_TRUE(wal.ok());
  auto payload = Payload(64, 1);
  ASSERT_TRUE(wal->Append(WalRecordType::kUpdate, 0, payload).ok());

  auto reopened = Wal::Open(&disk);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->recovered().empty());
  EXPECT_EQ(reopened->next_lsn(), 1u);
}

TEST(WalTest, CorruptTailIsTruncatedAndTheLogContinues) {
  MemoryDiskManager disk(kPageSize);
  auto wal = Wal::Create(&disk);
  ASSERT_TRUE(wal.ok());
  const std::vector<size_t> sizes = {30, 30, 40};
  for (size_t i = 0; i < sizes.size(); ++i) {
    auto payload = Payload(sizes[i], static_cast<uint8_t>(i));
    ASSERT_TRUE(wal->Append(WalRecordType::kUpdate, 0, payload).ok());
  }
  ASSERT_TRUE(wal->Flush().ok());

  // Corrupt one payload byte of the THIRD record.
  const size_t rec3_off = 2 * kWalRecordHeaderBytes + 30 + 30;
  CorruptRegionByte(&disk, rec3_off + kWalRecordHeaderBytes + 5);

  auto reopened = Wal::Open(&disk);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->tail_truncated());
  ASSERT_EQ(reopened->recovered().size(), 2u);
  EXPECT_EQ(reopened->recovered()[1].payload, Payload(30, 1));
  EXPECT_EQ(reopened->next_lsn(), 3u);  // the torn lsn is reassigned

  // Truncate-and-continue: appends after the truncation point are
  // recovered cleanly. The new payload outsizes the torn frame so no
  // stale bytes trail it.
  auto fresh = Payload(150, 9);
  auto lsn = reopened->Append(WalRecordType::kUpdate, 7, fresh);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  ASSERT_TRUE(reopened->Flush().ok());

  auto final_open = Wal::Open(&disk);
  ASSERT_TRUE(final_open.ok());
  EXPECT_FALSE(final_open->tail_truncated());
  ASSERT_EQ(final_open->recovered().size(), 3u);
  EXPECT_EQ(final_open->recovered()[2].lsn, 3u);
  EXPECT_EQ(final_open->recovered()[2].store_id, 7u);
  EXPECT_EQ(final_open->recovered()[2].payload, fresh);
}

TEST(WalTest, CorruptMiddleRecordDropsTheSuffix) {
  MemoryDiskManager disk(kPageSize);
  auto wal = Wal::Create(&disk);
  ASSERT_TRUE(wal.ok());
  for (size_t i = 0; i < 3; ++i) {
    auto payload = Payload(30, static_cast<uint8_t>(i));
    ASSERT_TRUE(wal->Append(WalRecordType::kUpdate, 0, payload).ok());
  }
  ASSERT_TRUE(wal->Flush().ok());

  // A flipped byte in record 2's payload kills records 2 AND 3: the
  // log is a prefix, never a sieve.
  const size_t rec2_off = kWalRecordHeaderBytes + 30;
  CorruptRegionByte(&disk, rec2_off + kWalRecordHeaderBytes + 3);

  auto reopened = Wal::Open(&disk);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->tail_truncated());
  ASSERT_EQ(reopened->recovered().size(), 1u);
  EXPECT_EQ(reopened->recovered()[0].payload, Payload(30, 0));
}

TEST(WalTest, TornFlushTruncatesOnReopen) {
  MemoryDiskManager base(kPageSize);
  CrashController ctl;
  FaultInjectingDiskManager disk(&base, &ctl);
  auto wal = Wal::Create(&disk);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(disk.Sync().ok());  // settle the header onto the base

  auto payload = Payload(200, 3);
  ASSERT_TRUE(wal->Append(WalRecordType::kUpdate, 0, payload).ok());
  // Tear the first page write of the flush: header + part of the
  // payload reach the platter, the rest is lost with the crash.
  ctl.ArmAt(0, FaultAction::kTornWrite, CrashSurvival::kLoseUnsynced);
  auto flushed = wal->Flush();
  EXPECT_FALSE(flushed.ok());
  EXPECT_TRUE(ctl.crashed());

  auto reopened = Wal::Open(&base);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->tail_truncated());
  EXPECT_TRUE(reopened->recovered().empty());
  EXPECT_EQ(reopened->next_lsn(), 1u);

  // The survivor is fully usable: append and recover normally.
  auto big = Payload(230, 4);  // outsizes the torn frame
  ASSERT_TRUE(reopened->Append(WalRecordType::kUpdate, 1, big).ok());
  ASSERT_TRUE(reopened->Flush().ok());
  auto final_open = Wal::Open(&base);
  ASSERT_TRUE(final_open.ok());
  ASSERT_EQ(final_open->recovered().size(), 1u);
  EXPECT_EQ(final_open->recovered()[0].payload, big);
}

TEST(WalTest, CheckpointRotatesTheLog) {
  MemoryDiskManager disk(kPageSize);
  auto wal = Wal::Create(&disk);
  ASSERT_TRUE(wal.ok());
  for (size_t i = 0; i < 2; ++i) {
    auto payload = Payload(30, static_cast<uint8_t>(i));
    ASSERT_TRUE(wal->Append(WalRecordType::kUpdate, 0, payload).ok());
  }
  ASSERT_TRUE(wal->Flush().ok());
  ASSERT_TRUE(wal->Checkpoint().ok());
  EXPECT_EQ(wal->stats().checkpoints, 1u);

  // The rotated log is empty; the lsn space continues (records with
  // lsn below start_lsn are dead even though their bytes linger).
  auto reopened = Wal::Open(&disk);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->recovered().empty());
  EXPECT_FALSE(reopened->tail_truncated());
  EXPECT_EQ(reopened->next_lsn(), 3u);

  // New appends overwrite the record region from the start. The
  // payload outsizes both dead frames so the scan ends on zeros.
  auto fresh = Payload(300, 8);
  auto lsn = reopened->Append(WalRecordType::kLabelRewrite, 4, fresh);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  ASSERT_TRUE(reopened->Flush().ok());
  auto final_open = Wal::Open(&disk);
  ASSERT_TRUE(final_open.ok());
  EXPECT_FALSE(final_open->tail_truncated());
  ASSERT_EQ(final_open->recovered().size(), 1u);
  EXPECT_EQ(final_open->recovered()[0].lsn, 3u);
  EXPECT_EQ(final_open->recovered()[0].type,
            static_cast<uint16_t>(WalRecordType::kLabelRewrite));
  EXPECT_EQ(final_open->recovered()[0].payload, fresh);
}

TEST(WalTest, CheckpointWithPendingRecordsFails) {
  MemoryDiskManager disk(kPageSize);
  auto wal = Wal::Create(&disk);
  ASSERT_TRUE(wal.ok());
  auto payload = Payload(16, 1);
  ASSERT_TRUE(wal->Append(WalRecordType::kUpdate, 0, payload).ok());
  const Status st = wal->Checkpoint();
  EXPECT_FALSE(st.ok());
  ASSERT_TRUE(wal->Flush().ok());
  EXPECT_TRUE(wal->Checkpoint().ok());
}

// ---------------------------------------------------------------------
// Redo idempotence over real stores.

core::UpdateDescriptor InsertDesc(NodeId node, PointId point) {
  core::UpdateDescriptor d;
  d.op = core::UpdateDescriptor::Op::kInsertPoint;
  d.domain = 0;
  d.node = node;
  d.point = point;
  return d;
}

TEST(WalTest, KnnReplayIsIdempotentAcrossDoubleRecovery) {
  MemoryDiskManager data_base(kPageSize);
  MemoryDiskManager wal_disk(kPageSize);
  CrashController ctl;
  auto data_disk =
      std::make_unique<FaultInjectingDiskManager>(&data_base, &ctl);

  auto file = KnnFile::Create(data_disk.get(), /*num_nodes=*/20,
                              /*k=*/3);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(data_disk->Sync().ok());  // formatting is durable
  auto wal = Wal::Create(&wal_disk);
  ASSERT_TRUE(wal.ok());

  const std::vector<NnEntry> first = {{0, 1.5}, {2, 2.5}};
  const std::vector<NnEntry> second = {{4, 0.5}, {0, 1.5}, {2, 2.5}};
  const std::vector<NnEntry> other = {{4, 3.0}};
  {
    auto pool = std::make_unique<BufferPool>(data_disk.get(), 4);
    pool->AttachWal(&*wal);
    core::DurableKnnStore store(&*file, pool.get(), &*wal,
                                /*store_id=*/7);
    core::UpdateStats stats;
    ASSERT_TRUE(store.BeginUpdate(InsertDesc(5, 0)).ok());
    ASSERT_TRUE(store.Write(5, first).ok());
    ASSERT_TRUE(store.Write(6, other).ok());
    ASSERT_TRUE(store.CommitUpdate(&stats).ok());
    EXPECT_EQ(stats.log_records, 1u);
    EXPECT_GT(stats.log_bytes, 0u);
    ASSERT_TRUE(store.BeginUpdate(InsertDesc(5, 1)).ok());
    ASSERT_TRUE(store.Write(5, second).ok());
    ASSERT_TRUE(store.CommitUpdate(&stats).ok());
    EXPECT_EQ(stats.log_records, 2u);

    // Power failure: every dirty data page still sits in the pool (or
    // the drive cache) and is lost; the flushed log survives on its
    // own device.
    ctl.CrashNow(CrashSurvival::kLoseUnsynced);
  }
  data_disk.reset();

  auto replay_once = [&](size_t* pages_written) {
    auto reopened_file = KnnFile::Open(&data_base, file->first_page());
    ASSERT_TRUE(reopened_file.ok());
    auto reopened_wal = Wal::Open(&wal_disk);
    ASSERT_TRUE(reopened_wal.ok());
    ASSERT_EQ(reopened_wal->recovered().size(), 2u);
    auto result = core::RecoverStores(
        *reopened_wal, {{7u, {&*reopened_file, &data_base}}});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->records_replayed, 2u);
    EXPECT_FALSE(result->tail_truncated);
    *pages_written = result->pages_written;

    BufferPool check_pool(&data_base, 4);
    std::vector<NnEntry> got;
    ASSERT_TRUE(reopened_file->Read(&check_pool, 5, &got).ok());
    EXPECT_EQ(got, second);  // the later record wins
    ASSERT_TRUE(reopened_file->Read(&check_pool, 6, &got).ok());
    EXPECT_EQ(got, other);
    ASSERT_TRUE(reopened_file->Read(&check_pool, 4, &got).ok());
    EXPECT_TRUE(got.empty());  // untouched slots stay empty
  };

  size_t pages_first = 0;
  replay_once(&pages_first);
  EXPECT_GT(pages_first, 0u);

  // Recover-twice == recover-once: the page-LSN filter rejects every
  // already-applied list.
  size_t pages_second = 0;
  replay_once(&pages_second);
  EXPECT_EQ(pages_second, 0u);
}

// The commit-path checkpoint policy: a DurableKnnStore constructed
// with a log-size threshold invokes CheckpointThrough when a commit
// leaves the log at or past it — the log shrinks back to empty, the
// data pages are already durable, and a reopened world needs no replay.
TEST(WalTest, CommitCheckpointsWhenLogCrossesThreshold) {
  MemoryDiskManager data_disk(kPageSize);
  MemoryDiskManager wal_disk(kPageSize);
  auto file = KnnFile::Create(&data_disk, /*num_nodes=*/20, /*k=*/3);
  ASSERT_TRUE(file.ok());
  auto wal = Wal::Create(&wal_disk);
  ASSERT_TRUE(wal.ok());
  BufferPool pool(&data_disk, 4);
  pool.AttachWal(&*wal);

  const std::vector<NnEntry> first = {{0, 1.5}, {2, 2.5}};
  const std::vector<NnEntry> second = {{4, 0.5}, {0, 1.5}};
  {
    // Threshold of one byte: every committed record crosses it, so
    // every commit ends with a freshly rotated (empty) log.
    core::DurableKnnStore store(&*file, &pool, &*wal, /*store_id=*/7,
                                /*checkpoint_threshold_bytes=*/1);
    core::UpdateStats stats;
    ASSERT_TRUE(store.BeginUpdate(InsertDesc(5, 0)).ok());
    ASSERT_TRUE(store.Write(5, first).ok());
    ASSERT_TRUE(store.CommitUpdate(&stats).ok());
    EXPECT_EQ(wal->log_bytes(), 0u);
    EXPECT_EQ(wal->stats().checkpoints, 1u);

    ASSERT_TRUE(store.BeginUpdate(InsertDesc(6, 1)).ok());
    ASSERT_TRUE(store.Write(6, second).ok());
    ASSERT_TRUE(store.CommitUpdate(&stats).ok());
    EXPECT_EQ(wal->log_bytes(), 0u);
    EXPECT_EQ(wal->stats().checkpoints, 2u);
  }
  {
    // Zero threshold disables the policy: the log grows across commits
    // until somebody checkpoints explicitly.
    core::DurableKnnStore store(&*file, &pool, &*wal, /*store_id=*/7);
    core::UpdateStats stats;
    ASSERT_TRUE(store.BeginUpdate(InsertDesc(7, 2)).ok());
    ASSERT_TRUE(store.Write(7, first).ok());
    ASSERT_TRUE(store.CommitUpdate(&stats).ok());
    EXPECT_GT(wal->log_bytes(), 0u);
    EXPECT_EQ(wal->stats().checkpoints, 2u);
    ASSERT_TRUE(CheckpointThrough(pool, *wal).ok());
    EXPECT_EQ(wal->log_bytes(), 0u);
  }

  // Recovery round-trips: the checkpoints made the data durable, so a
  // reopened log has nothing to replay and the lists read back intact.
  auto reopened_wal = Wal::Open(&wal_disk);
  ASSERT_TRUE(reopened_wal.ok());
  EXPECT_TRUE(reopened_wal->recovered().empty());
  auto reopened_file = KnnFile::Open(&data_disk, file->first_page());
  ASSERT_TRUE(reopened_file.ok());
  BufferPool check_pool(&data_disk, 4);
  std::vector<NnEntry> got;
  ASSERT_TRUE(reopened_file->Read(&check_pool, 5, &got).ok());
  EXPECT_EQ(got, first);
  ASSERT_TRUE(reopened_file->Read(&check_pool, 6, &got).ok());
  EXPECT_EQ(got, second);
  ASSERT_TRUE(reopened_file->Read(&check_pool, 7, &got).ok());
  EXPECT_EQ(got, first);
}

TEST(WalTest, LabelRewriteJournalsAndReplays) {
  auto g = graph::Graph::FromEdges(5, {{0, 1, 1.0},
                                       {1, 2, 2.0},
                                       {2, 3, 1.5},
                                       {3, 4, 1.0},
                                       {0, 4, 4.0}})
               .ValueOrDie();
  graph::GraphView view(&g);
  auto labels = index::HubLabelBuilder::Build(view).ValueOrDie();

  MemoryDiskManager data_base(kPageSize);
  MemoryDiskManager wal_disk(kPageSize);
  CrashController ctl;
  auto data_disk =
      std::make_unique<FaultInjectingDiskManager>(&data_base, &ctl);

  auto file = index::LabelFile::Build(labels, data_disk.get());
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(data_disk->Sync().ok());
  auto wal = Wal::Create(&wal_disk);
  ASSERT_TRUE(wal.ok());

  // Pick a node with a non-empty label and rewrite it (equal count,
  // perturbed distances), journaled.
  NodeId target = kInvalidNode;
  for (NodeId n = 0; n < 5; ++n) {
    if (file->LabelSize(n) > 0) {
      target = n;
      break;
    }
  }
  ASSERT_NE(target, kInvalidNode);
  std::vector<index::HubEntry> rewritten;
  {
    auto pool = std::make_unique<BufferPool>(data_disk.get(), 4);
    pool->AttachWal(&*wal);
    index::LabelCursor cursor;
    auto scanned = file->ScanLabel(pool.get(), target, cursor);
    ASSERT_TRUE(scanned.ok());
    rewritten.assign(scanned->begin(), scanned->end());
    for (index::HubEntry& e : rewritten) {
      e.dist += 1.0;
    }
    core::DurableLabelWriter writer(&*file, pool.get(), &*wal,
                                    /*store_id=*/9);
    core::UpdateStats stats;
    ASSERT_TRUE(writer.Rewrite(target, rewritten, &stats).ok());
    EXPECT_EQ(stats.log_records, 1u);
    EXPECT_EQ(stats.lists_written, 1u);
    ctl.CrashNow(CrashSurvival::kLoseUnsynced);  // data pages lost
  }
  data_disk.reset();

  auto replay_once = [&](size_t* pages_written) {
    auto reopened_file =
        index::LabelFile::Open(&data_base, file->first_page());
    ASSERT_TRUE(reopened_file.ok());
    auto reopened_wal = Wal::Open(&wal_disk);
    ASSERT_TRUE(reopened_wal.ok());
    auto result = core::RecoverStores(
        *reopened_wal, {}, {{9u, {&*reopened_file, &data_base}}});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->label_rewrites.size(), 1u);
    EXPECT_EQ(result->label_rewrites[0].node, target);
    *pages_written = result->pages_written;

    auto lsn = reopened_file->PageLsnOf(&data_base, target);
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 1u);  // the rewrite's record lsn, stamped by redo
    BufferPool check_pool(&data_base, 4);
    index::LabelCursor cursor;
    auto scanned = reopened_file->ScanLabel(&check_pool, target, cursor);
    ASSERT_TRUE(scanned.ok());
    ASSERT_EQ(scanned->size(), rewritten.size());
    for (size_t i = 0; i < rewritten.size(); ++i) {
      EXPECT_EQ((*scanned)[i].hub, rewritten[i].hub);
      EXPECT_DOUBLE_EQ((*scanned)[i].dist, rewritten[i].dist);
    }
  };

  size_t pages_first = 0;
  replay_once(&pages_first);
  EXPECT_GT(pages_first, 0u);
  size_t pages_second = 0;
  replay_once(&pages_second);
  EXPECT_EQ(pages_second, 0u);
}

// Malformed payloads surface as Corruption from the decode layer, not
// as silent misreads.
TEST(WalTest, MalformedPayloadsAreRejectedByTheDecoder) {
  WalRecord rec;
  rec.lsn = 5;
  rec.type = static_cast<uint16_t>(WalRecordType::kUpdate);
  rec.store_id = 1;
  rec.payload = {1, 2, 3};  // far too short for a descriptor
  EXPECT_FALSE(core::DecodeUpdateRecord(rec).ok());

  // A valid encoding with trailing garbage is rejected too.
  core::UpdateDescriptor d;
  d.op = core::UpdateDescriptor::Op::kInsertPoint;
  d.node = 1;
  d.point = 0;
  rec.payload = core::EncodeUpdatePayload(d, {});
  ASSERT_TRUE(core::DecodeUpdateRecord(rec).ok());
  rec.payload.push_back(0);
  EXPECT_FALSE(core::DecodeUpdateRecord(rec).ok());

  rec.type = static_cast<uint16_t>(WalRecordType::kLabelRewrite);
  rec.payload = {7};
  EXPECT_FALSE(core::DecodeLabelRecord(rec).ok());
}

}  // namespace
}  // namespace grnn::storage
