// Sharded pin-table correctness for BufferPool (PR 3): pin/unpin and
// eviction stay confined to the page's shard, stats() snapshots sum the
// per-shard counters exactly, and a multi-threaded hammer over a real
// KnnFile keeps every read intact (the TSan CI job proves the locking).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/knn_file.h"

namespace grnn::storage {
namespace {

class BufferPoolShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<MemoryDiskManager>(128);
    for (int i = 0; i < 32; ++i) {
      auto id = disk_->AllocatePage().ValueOrDie();
      std::vector<uint8_t> data(128, static_cast<uint8_t>(i));
      ASSERT_TRUE(disk_->WritePage(id, data.data()).ok());
    }
  }

  std::unique_ptr<MemoryDiskManager> disk_;
};

TEST_F(BufferPoolShardTest, ShardCountIsClamped) {
  // Never more shards than frames; unbuffered pools keep one shard.
  EXPECT_EQ(BufferPool(disk_.get(), 8, ReplacementPolicy::kLru, 4)
                .num_shards(),
            4u);
  EXPECT_EQ(BufferPool(disk_.get(), 2, ReplacementPolicy::kLru, 8)
                .num_shards(),
            2u);
  EXPECT_EQ(BufferPool(disk_.get(), 0, ReplacementPolicy::kLru, 8)
                .num_shards(),
            1u);
  EXPECT_EQ(BufferPool(disk_.get(), 8, ReplacementPolicy::kLru, 0)
                .num_shards(),
            1u);
}

TEST_F(BufferPoolShardTest, StatsSnapshotSumsAcrossShards) {
  BufferPool pool(disk_.get(), 8, ReplacementPolicy::kLru, 4);
  // Pages 0..7 map to shards 0..3, two pages each.
  for (PageId id = 0; id < 8; ++id) {
    auto g = pool.Acquire(id).ValueOrDie();
    EXPECT_EQ(g.data()[0], id);
  }
  IoStats s = pool.stats();
  EXPECT_EQ(s.logical_reads, 8u);
  EXPECT_EQ(s.physical_reads, 8u);
  EXPECT_EQ(pool.num_resident(), 8u);
  EXPECT_EQ(pool.num_pinned(), 0u);
  // All hits now: every shard serves its own resident pages.
  for (PageId id = 0; id < 8; ++id) {
    auto g = pool.Acquire(id).ValueOrDie();
  }
  s = pool.stats();
  EXPECT_EQ(s.logical_reads, 16u);
  EXPECT_EQ(s.physical_reads, 8u);
  EXPECT_NEAR(s.HitRate(), 0.5, 1e-12);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().logical_reads, 0u);
}

TEST_F(BufferPoolShardTest, EvictionStaysWithinTheShard) {
  // 2 shards x 2 frames. Shard 0 holds even pages, shard 1 odd ones.
  BufferPool pool(disk_.get(), 4, ReplacementPolicy::kLru, 2);
  { auto g = pool.Acquire(0).ValueOrDie(); }
  { auto g = pool.Acquire(2).ValueOrDie(); }
  { auto g = pool.Acquire(1).ValueOrDie(); }
  { auto g = pool.Acquire(3).ValueOrDie(); }
  EXPECT_EQ(pool.num_resident(), 4u);
  // A third even page evicts shard 0's LRU (page 0); the odd shard is
  // untouched.
  { auto g = pool.Acquire(4).ValueOrDie(); }
  pool.ResetStats();
  { auto g = pool.Acquire(1).ValueOrDie(); }  // still resident
  { auto g = pool.Acquire(3).ValueOrDie(); }  // still resident
  { auto g = pool.Acquire(2).ValueOrDie(); }  // survived in shard 0
  EXPECT_EQ(pool.stats().physical_reads, 0u);
  { auto g = pool.Acquire(0).ValueOrDie(); }  // the evicted one
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST_F(BufferPoolShardTest, ExhaustionIsPerShard) {
  BufferPool pool(disk_.get(), 4, ReplacementPolicy::kLru, 2);
  // Pin both frames of shard 0 (even pages).
  auto a = pool.Acquire(0).ValueOrDie();
  auto b = pool.Acquire(2).ValueOrDie();
  auto c = pool.Acquire(4);
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsResourceExhausted());
  // The odd shard still has room.
  EXPECT_TRUE(pool.Acquire(1).ok());
  a.Release();
  EXPECT_TRUE(pool.Acquire(4).ok());
}

TEST_F(BufferPoolShardTest, DirtyPagesFlushFromEveryShard) {
  BufferPool pool(disk_.get(), 6, ReplacementPolicy::kLru, 3);
  for (PageId id = 10; id < 13; ++id) {  // one page per shard
    auto g = pool.Acquire(id).ValueOrDie();
    g.mutable_data()[1] = static_cast<uint8_t>(0xA0 + id);
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  for (PageId id = 10; id < 13; ++id) {
    std::vector<uint8_t> buf(128);
    ASSERT_TRUE(disk_->ReadPage(id, buf.data()).ok());
    EXPECT_EQ(buf[1], static_cast<uint8_t>(0xA0 + id));
    EXPECT_EQ(buf[2], static_cast<uint8_t>(id));
  }
  EXPECT_EQ(pool.stats().physical_writes, 3u);
}

TEST_F(BufferPoolShardTest, InvalidateDropsAllShards) {
  BufferPool pool(disk_.get(), 8, ReplacementPolicy::kLru, 4);
  for (PageId id = 0; id < 8; ++id) {
    auto g = pool.Acquire(id).ValueOrDie();
  }
  ASSERT_TRUE(pool.Invalidate().ok());
  EXPECT_EQ(pool.num_resident(), 0u);
}

// The hammer: many threads reading (and some rewriting) a KnnFile whose
// pages spread over every shard of a small shared pool. Readers only
// touch a node range no writer rewrites, so every observed list must be
// exactly what was stored; the shard mutexes make the interleaving safe
// (this test runs under TSan in CI).
TEST_F(BufferPoolShardTest, MultithreadedHammerKeepsListsIntact) {
  auto disk = std::make_unique<MemoryDiskManager>(256);
  constexpr NodeId kNodes = 256;
  constexpr uint32_t kK = 4;
  auto file = KnnFile::Create(disk.get(), kNodes, kK).ValueOrDie();

  // 5 lists of 48 bytes per 256-byte page: the file spans ~52 pages,
  // far more than the shard count, so traffic spreads over every shard.
  // 16 frames over 8 shards (2 per shard) keeps eviction traffic
  // constant and makes transient per-shard pin contention frequent —
  // Acquire's internal bounded retry must absorb all of it (a
  // ResourceExhausted surfacing here is a failure).
  BufferPool pool(disk.get(), 16, ReplacementPolicy::kLru,
                  kDefaultConcurrentShards);
  ASSERT_GT(file.num_pages(), pool.num_shards());
  // Sanity: consecutive node slots really land on different shards.
  EXPECT_NE(file.FirstPageOf(0) % pool.num_shards(),
            file.FirstPageOf(kNodes - 1) % pool.num_shards());

  auto list_of = [](NodeId n, uint32_t generation) {
    std::vector<NnEntry> list;
    for (uint32_t i = 0; i < kK; ++i) {
      list.push_back(NnEntry{n * 10 + i + generation,
                             static_cast<Weight>(n) + i});
    }
    return list;
  };
  for (NodeId n = 0; n < kNodes; ++n) {
    ASSERT_TRUE(file.Write(&pool, n, list_of(n, 0)).ok());
  }

  // Nodes [0, 128) are read-only; writers rewrite disjoint partitions of
  // [128, 256) with rising generations.
  constexpr NodeId kStable = 128;
  constexpr int kReaders = 6;
  constexpr int kWriters = 2;
  constexpr int kRounds = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 97 + 13);
      std::vector<NnEntry> list;
      for (int i = 0; i < kRounds; ++i) {
        NodeId n = static_cast<NodeId>(rng.UniformInt(kStable));
        if (!file.Read(&pool, n, &list).ok() || list != list_of(n, 0)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      const NodeId begin = kStable + static_cast<NodeId>(t) *
                                         (kNodes - kStable) / kWriters;
      const NodeId end = kStable + static_cast<NodeId>(t + 1) *
                                       (kNodes - kStable) / kWriters;
      for (int i = 0; i < kRounds; ++i) {
        NodeId n = begin + static_cast<NodeId>(i) % (end - begin);
        const uint32_t generation = static_cast<uint32_t>(i / (end - begin)) + 1;
        if (!file.Write(&pool, n, list_of(n, generation)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Logical reads saw every acquire: readers fault/hit once per page a
  // list read touches, writers once per page written. No counter lost.
  const IoStats s = pool.stats();
  EXPECT_GE(s.logical_reads,
            static_cast<uint64_t>(kReaders) * kRounds);
  EXPECT_EQ(pool.num_pinned(), 0u);
  ASSERT_TRUE(pool.FlushAll().ok());
  // After the dust settles every list is its final generation: the
  // read-only half untouched, every writer node at the generation its
  // deterministic schedule ended on (no lost or torn slot writes
  // despite concurrent same-page traffic).
  std::vector<uint32_t> final_gen(kNodes, 0);
  for (int t = 0; t < kWriters; ++t) {
    const NodeId begin = kStable + static_cast<NodeId>(t) *
                                       (kNodes - kStable) / kWriters;
    const NodeId end = kStable + static_cast<NodeId>(t + 1) *
                                     (kNodes - kStable) / kWriters;
    for (int i = 0; i < kRounds; ++i) {
      final_gen[begin + static_cast<NodeId>(i) % (end - begin)] =
          static_cast<uint32_t>(i / (end - begin)) + 1;
    }
  }
  std::vector<NnEntry> list;
  for (NodeId n = 0; n < kNodes; ++n) {
    ASSERT_TRUE(file.Read(&pool, n, &list).ok());
    EXPECT_EQ(list, list_of(n, final_gen[n])) << "node " << n;
  }
}

}  // namespace
}  // namespace grnn::storage
