// Copyright (c) GRNN authors.
// Crash-point-enumerating recovery harness (PR 7).
//
// A CrashWorld is one deterministic durable deployment: a seeded grid
// graph with node points, sites and edge points, three journaled KNN
// stores (DurableKnnStore over KnnFiles sharing one data device and one
// WAL device), and updatable engines over them. Both devices are
// wrapped in FaultInjectingDiskManager decorators sharing one
// CrashController, so every write point of a seeded update burst —
// every page write and every fsync, on data AND log — can be counted
// and then crashed at.
//
// The enumeration protocol:
//
//   CrashWorldOptions opts{...};
//   uint64_t n = CountWritePoints(opts);        // counting run
//   for (uint64_t p = 0; p < n; ++p) {
//     Status s = RunCrashCycle(opts, p, FaultAction::kFailStop,
//                              CrashSurvival::kLoseUnsynced, ...);
//   }
//
// Each cycle rebuilds the identical world, arms the controller at
// point p, runs the burst until the injected crash, then recovers from
// the BASE devices (exactly what survived) and checks every durability
// invariant:
//
//   * every acknowledged update is in the recovered log, in order;
//   * the logical point state replayed from the recovered descriptors
//     is internally consistent (replay reassigns the logged point ids);
//   * every recovered store equals a from-scratch BuildAllNn oracle
//     over the replayed point sets;
//   * recovering a second time replays zero pages (idempotence);
//   * optionally, the full kind x algorithm x k query matrix over the
//     recovered world matches the brute-force oracle.
//
// The harness reports violations as Status (no gtest dependency), so
// the same machinery drives the unit suites, the differential
// harness's crash phase and the recovery-time bench.

#ifndef GRNN_TESTS_STORAGE_CRASH_HARNESS_H_
#define GRNN_TESTS_STORAGE_CRASH_HARNESS_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/durability.h"
#include "core/engine.h"
#include "fault_injection.h"
#include "graph/graph.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/knn_file.h"
#include "storage/wal.h"

namespace grnn::core::testing {

/// Store ids the harness journals under (recovery routes by these).
inline constexpr uint32_t kPointsStoreId = 1;
inline constexpr uint32_t kSitesStoreId = 2;
inline constexpr uint32_t kEdgeStoreId = 3;

struct CrashWorldOptions {
  uint64_t seed = 1;
  /// Grid world dimensions (num_nodes = rows * cols).
  uint32_t grid_rows = 7;
  uint32_t grid_cols = 7;
  size_t num_points = 10;
  size_t num_sites = 6;
  size_t num_edge_points = 8;
  /// Store capacity; the query matrix sweeps k in [1, capacity - 1].
  uint32_t capacity = 4;
  /// Small pages + a small pool force evictions mid-burst, so the
  /// log-before-page discipline is on the enumerated fault path.
  size_t page_size = 256;
  size_t pool_frames = 8;
  /// Update-burst length (ops attempted through the engines).
  size_t ops = 40;
};

/// One update the engine acknowledged (ApplyUpdate returned OK).
struct AckedUpdate {
  UpdateSpec spec;
  /// Id the engine assigned (insert) or removed (delete).
  PointId point = kInvalidPoint;
  /// WAL lsn of the update's record (the store's last_commit_lsn at
  /// the acknowledgement).
  uint64_t lsn = 0;
  uint32_t store_id = 0;
};

/// Everything recovery produced: the reopened files and log, the
/// logical point state replayed from the recovered descriptors, and
/// live engines over the recovered world (updates keep journaling
/// through the reopened WAL).
struct RecoveredWorld {
  CrashWorldOptions opts;
  graph::Graph g;
  std::optional<graph::GraphView> view;
  NodePointSet points{0};
  NodePointSet sites{0};
  EdgePointSet edge_points;
  std::unique_ptr<storage::Wal> wal;
  std::unique_ptr<storage::KnnFile> points_file;
  std::unique_ptr<storage::KnnFile> sites_file;
  std::unique_ptr<storage::KnnFile> edge_file;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<DurableKnnStore> points_store;
  std::unique_ptr<DurableKnnStore> sites_store;
  std::unique_ptr<DurableKnnStore> edge_store;
  std::optional<RknnEngine> node_engine;
  std::optional<RknnEngine> edge_engine;
  RecoveryResult recovery;
};

/// \brief One deterministic durable deployment under fault injection.
///
/// Construction is off the fault path (the controller counts nothing
/// until StartCounting/ArmAt): it formats the files, builds the stores
/// offline and checkpoints, so the base devices hold a clean durable
/// state when the burst starts. Setup failures abort (GRNN_CHECK) —
/// only the burst and recovery run on the injected path.
class CrashWorld {
 public:
  CrashWorld(const CrashWorldOptions& opts,
             storage::testing::CrashController* ctl);

  /// Applies up to opts.ops seeded random updates (insert/delete over
  /// points, sites and edge points) through the engines, recording
  /// every acknowledged one. Stops at the first failed op — under an
  /// armed controller that is the injected crash, and the failed op is
  /// NOT recorded. Callable again after a transient fault to continue
  /// the burst (the op mix is drawn from a member rng).
  Status RunBurst(std::vector<AckedUpdate>* acked);

  /// Reopens the BASE devices (what survived the crash), replays the
  /// log into the files, and rebuilds the logical world by replaying
  /// the recovered descriptors. Fails if a replayed insert does not
  /// reassign the logged point id.
  Result<std::unique_ptr<RecoveredWorld>> Recover() const;

  RknnEngine& node_engine() { return *node_engine_; }
  RknnEngine& edge_engine() { return *edge_engine_; }
  DurableKnnStore& points_store() { return *points_store_; }
  DurableKnnStore& sites_store() { return *sites_store_; }
  DurableKnnStore& edge_store() { return *edge_store_; }
  storage::Wal& wal() { return *wal_; }
  storage::BufferPool& pool() { return *pool_; }
  storage::MemoryDiskManager& data_base() { return *data_base_; }
  storage::MemoryDiskManager& wal_base() { return *wal_base_; }
  const graph::Graph& graph() const { return g_; }
  const NodePointSet& points() const { return points_; }
  const NodePointSet& sites() const { return sites_; }
  const EdgePointSet& edge_points() const { return edge_points_; }
  const CrashWorldOptions& opts() const { return opts_; }

 private:
  CrashWorldOptions opts_;
  graph::Graph g_;
  std::optional<graph::GraphView> view_;
  std::vector<Edge> edges_;
  NodePointSet points_{0};
  NodePointSet sites_{0};
  EdgePointSet edge_points_;
  std::unique_ptr<storage::MemoryDiskManager> data_base_;
  std::unique_ptr<storage::MemoryDiskManager> wal_base_;
  std::unique_ptr<storage::testing::FaultInjectingDiskManager> data_disk_;
  std::unique_ptr<storage::testing::FaultInjectingDiskManager> wal_disk_;
  std::unique_ptr<storage::KnnFile> points_file_;
  std::unique_ptr<storage::KnnFile> sites_file_;
  std::unique_ptr<storage::KnnFile> edge_file_;
  std::unique_ptr<storage::Wal> wal_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<DurableKnnStore> points_store_;
  std::unique_ptr<DurableKnnStore> sites_store_;
  std::unique_ptr<DurableKnnStore> edge_store_;
  std::optional<RknnEngine> node_engine_;
  std::optional<RknnEngine> edge_engine_;
  Rng rng_;
};

/// Invariant checks, granular so the serial enumeration and the
/// multithreaded kill test can each assert what their model supports.

/// Serial bursts: the acknowledged updates are exactly a prefix of the
/// recovered log (same lsns, same descriptors, same assigned ids).
Status CheckAckedPrefix(const RecoveredWorld& rw,
                        const std::vector<AckedUpdate>& acked);

/// Concurrent bursts: every acknowledged update appears in the
/// recovered log (matched by lsn, descriptor verified); order across
/// domains is whatever the log says.
Status CheckAckedDurable(const RecoveredWorld& rw,
                         const std::vector<AckedUpdate>& acked);

/// Every recovered store equals a from-scratch BuildAllNn /
/// UnrestrictedBuildAllNn oracle over the replayed point sets.
Status CheckStoresMatchRebuild(RecoveredWorld& rw);

/// Recovering again from the same devices replays zero pages.
Status CheckRecoveryIdempotent(const CrashWorld& world);

/// The full kind x algorithm x k x exclusion query matrix over the
/// recovered engines, every result compared against brute force.
Status CheckQueryMatrix(RecoveredWorld& rw, uint64_t seed);

/// CheckAckedPrefix + CheckStoresMatchRebuild + CheckRecoveryIdempotent.
Status CheckRecovered(const CrashWorld& world, RecoveredWorld& rw,
                      const std::vector<AckedUpdate>& acked);

/// Counting run: builds the world, runs the full burst with the
/// controller counting, and returns the number of write points the
/// burst generates. Deterministic: armed runs over the same options
/// see the identical sequence.
uint64_t CountWritePoints(const CrashWorldOptions& opts);

struct CrashCycleReport {
  size_t acked = 0;
  bool tripped = false;  // false: the burst outran the armed point
  size_t records_replayed = 0;
  size_t pages_written = 0;
  bool tail_truncated = false;
};

/// One full build -> arm -> burst -> crash -> recover -> verify cycle.
/// `action` must be a crashing one (kFailStop or kTornWrite). If the
/// burst completes without tripping (point beyond the run), the
/// controller crashes at the end so recovery is still exercised.
/// `check_queries` additionally runs the query matrix (slow; sample
/// it across the enumeration).
Status RunCrashCycle(const CrashWorldOptions& opts, uint64_t point,
                     storage::testing::FaultAction action,
                     storage::testing::CrashSurvival survival,
                     bool check_queries = false,
                     CrashCycleReport* report = nullptr);

}  // namespace grnn::core::testing

#endif  // GRNN_TESTS_STORAGE_CRASH_HARNESS_H_
