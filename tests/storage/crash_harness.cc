#include "crash_harness.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"
#include "gen/grid.h"

namespace grnn::core::testing {

namespace {

using storage::testing::CrashController;
using storage::testing::CrashSurvival;
using storage::testing::FaultAction;
using storage::testing::FaultInjectingDiskManager;

// The seeded logical world, reproducible independently of any device
// state: the same options always yield the same graph and placements.
// Recovery rebuilds its point sets from here and replays the log's
// descriptors on top.
void BuildLogicalWorld(const CrashWorldOptions& opts, graph::Graph* g,
                       NodePointSet* points, NodePointSet* sites,
                       EdgePointSet* edge_points,
                       std::vector<Edge>* edges) {
  gen::GridConfig cfg;
  cfg.rows = opts.grid_rows;
  cfg.cols = opts.grid_cols;
  cfg.avg_degree = 4.5;
  cfg.unit_weights = (opts.seed % 2 == 0);  // exercise distance ties
  cfg.seed = opts.seed;
  *g = gen::GenerateGrid(cfg).ValueOrDie();
  const NodeId n = g->num_nodes();
  GRNN_CHECK(opts.num_points + opts.num_sites <= n);

  Rng rng(opts.seed * 0x9e3779b97f4a7c15ULL + 11);
  auto nodes =
      rng.SampleWithoutReplacement(n, opts.num_points + opts.num_sites);
  std::vector<NodeId> p_locs(
      nodes.begin(), nodes.begin() + static_cast<long>(opts.num_points));
  std::vector<NodeId> q_locs(
      nodes.begin() + static_cast<long>(opts.num_points), nodes.end());
  *points = NodePointSet::FromLocations(n, p_locs).ValueOrDie();
  *sites = NodePointSet::FromLocations(n, q_locs).ValueOrDie();

  *edges = g->CollectEdges();
  std::vector<EdgePosition> positions;
  for (uint64_t ei : rng.SampleWithoutReplacement(
           edges->size(),
           std::min<size_t>(opts.num_edge_points, edges->size()))) {
    const Edge& e = (*edges)[ei];
    positions.push_back({e.u, e.v, rng.Uniform(0.0, e.w)});
  }
  *edge_points = EdgePointSet::Create(*g, positions).ValueOrDie();
}

std::vector<PointId> Ids(const RknnResult& r) {
  std::vector<PointId> ids;
  ids.reserve(r.results.size());
  for (const PointMatch& m : r.results) {
    ids.push_back(m.point);
  }
  return ids;
}

const char* OpName(UpdateDescriptor::Op op) {
  switch (op) {
    case UpdateDescriptor::Op::kNone:
      return "none";
    case UpdateDescriptor::Op::kInsertPoint:
      return "insert-point";
    case UpdateDescriptor::Op::kDeletePoint:
      return "delete-point";
    case UpdateDescriptor::Op::kInsertEdgePoint:
      return "insert-edge-point";
    case UpdateDescriptor::Op::kDeleteEdgePoint:
      return "delete-edge-point";
  }
  return "?";
}

// The descriptor an acknowledged spec must have journaled.
UpdateDescriptor ExpectedDescriptor(const AckedUpdate& a) {
  UpdateDescriptor d;
  d.domain = static_cast<uint32_t>(a.spec.set);
  d.point = a.point;
  if (a.spec.set == UpdateSet::kEdgePoints) {
    d.op = a.spec.op == UpdateSpec::Op::kInsert
               ? UpdateDescriptor::Op::kInsertEdgePoint
               : UpdateDescriptor::Op::kDeleteEdgePoint;
    if (a.spec.op == UpdateSpec::Op::kInsert) {
      d.edge_u = a.spec.position.u;
      d.edge_v = a.spec.position.v;
      d.edge_offset = a.spec.position.pos;
    }
  } else {
    d.op = a.spec.op == UpdateSpec::Op::kInsert
               ? UpdateDescriptor::Op::kInsertPoint
               : UpdateDescriptor::Op::kDeletePoint;
    if (a.spec.op == UpdateSpec::Op::kInsert) {
      d.node = a.spec.node;
    }
  }
  return d;
}

// Field-by-field match of an acknowledged update against a recovered
// record. Deletes carry no node/edge fields in the spec, so only the
// op/domain/point triple binds them.
Status MatchRecord(const AckedUpdate& a, const JournaledUpdate& u) {
  const UpdateDescriptor want = ExpectedDescriptor(a);
  if (u.store_id != a.store_id) {
    return Status::Corruption(StrPrintf(
        "acked lsn=%llu journaled under store %u, want %u",
        static_cast<unsigned long long>(a.lsn), u.store_id, a.store_id));
  }
  if (u.desc.op != want.op ||
      u.desc.domain != want.domain || u.desc.point != want.point) {
    return Status::Corruption(StrPrintf(
        "acked lsn=%llu recovered as %s domain=%u point=%u, want %s "
        "domain=%u point=%u",
        static_cast<unsigned long long>(a.lsn), OpName(u.desc.op),
        u.desc.domain, u.desc.point, OpName(want.op), want.domain,
        want.point));
  }
  const bool is_insert = a.spec.op == UpdateSpec::Op::kInsert;
  if (is_insert && a.spec.set != UpdateSet::kEdgePoints &&
      u.desc.node != want.node) {
    return Status::Corruption(StrPrintf(
        "acked insert lsn=%llu recovered at node %u, want %u",
        static_cast<unsigned long long>(a.lsn), u.desc.node, want.node));
  }
  if (is_insert && a.spec.set == UpdateSet::kEdgePoints &&
      (u.desc.edge_u != want.edge_u || u.desc.edge_v != want.edge_v ||
       u.desc.edge_offset != want.edge_offset)) {
    return Status::Corruption(StrPrintf(
        "acked edge insert lsn=%llu recovered at (%u,%u,%f), want "
        "(%u,%u,%f)",
        static_cast<unsigned long long>(a.lsn), u.desc.edge_u,
        u.desc.edge_v, u.desc.edge_offset, want.edge_u, want.edge_v,
        want.edge_offset));
  }
  return Status::OK();
}

// One recovered store against a from-scratch oracle store. Point ids
// can legitimately differ at tied boundary distances, so the check is
// the per-node distance sequence (the differential harness's update
// oracle uses the same criterion).
Status CompareStore(const KnnStore& have, const KnnStore& want,
                    NodeId num_nodes, const char* label) {
  std::vector<NnEntry> h, w;
  for (NodeId n = 0; n < num_nodes; ++n) {
    GRNN_RETURN_NOT_OK(have.Read(n, &h));
    GRNN_RETURN_NOT_OK(want.Read(n, &w));
    if (h.size() != w.size()) {
      return Status::Corruption(StrPrintf(
          "store %s node %u: recovered %zu entries, oracle %zu", label,
          n, h.size(), w.size()));
    }
    for (size_t i = 0; i < h.size(); ++i) {
      if (std::abs(h[i].dist - w[i].dist) > 1e-9) {
        return Status::Corruption(StrPrintf(
            "store %s node %u slot %zu: recovered dist %.12f, oracle "
            "%.12f",
            label, n, i, h[i].dist, w[i].dist));
      }
    }
  }
  return Status::OK();
}

}  // namespace

CrashWorld::CrashWorld(const CrashWorldOptions& opts,
                       CrashController* ctl)
    : opts_(opts), rng_(opts.seed * 131 + 29) {
  BuildLogicalWorld(opts_, &g_, &points_, &sites_, &edge_points_,
                    &edges_);
  view_.emplace(&g_);
  const NodeId n = g_.num_nodes();

  data_base_ =
      std::make_unique<storage::MemoryDiskManager>(opts_.page_size);
  wal_base_ =
      std::make_unique<storage::MemoryDiskManager>(opts_.page_size);
  data_disk_ = std::make_unique<FaultInjectingDiskManager>(
      data_base_.get(), ctl);
  wal_disk_ =
      std::make_unique<FaultInjectingDiskManager>(wal_base_.get(), ctl);
  // Torn writes model the append-only log tail (CRC truncates them);
  // a torn DATA page is unrepairable under redo-only logging, so data
  // writes degrade a torn trip to fail-stop.
  data_disk_->set_tear_eligible(false);

  points_file_ = std::make_unique<storage::KnnFile>(
      storage::KnnFile::Create(data_disk_.get(), n, opts_.capacity)
          .ValueOrDie());
  sites_file_ = std::make_unique<storage::KnnFile>(
      storage::KnnFile::Create(data_disk_.get(), n, opts_.capacity)
          .ValueOrDie());
  edge_file_ = std::make_unique<storage::KnnFile>(
      storage::KnnFile::Create(data_disk_.get(), n, opts_.capacity)
          .ValueOrDie());
  wal_ = std::make_unique<storage::Wal>(
      storage::Wal::Create(wal_disk_.get()).ValueOrDie());
  pool_ = std::make_unique<storage::BufferPool>(data_disk_.get(),
                                                opts_.pool_frames);
  pool_->AttachWal(wal_.get());

  points_store_ = std::make_unique<DurableKnnStore>(
      points_file_.get(), pool_.get(), wal_.get(), kPointsStoreId);
  sites_store_ = std::make_unique<DurableKnnStore>(
      sites_file_.get(), pool_.get(), wal_.get(), kSitesStoreId);
  edge_store_ = std::make_unique<DurableKnnStore>(
      edge_file_.get(), pool_.get(), wal_.get(), kEdgeStoreId);

  // Offline construction (unjournaled), then a clean checkpoint: the
  // base devices hold the full durable state before the burst begins.
  GRNN_CHECK(BuildAllNn(*view_, points_, points_store_.get()).ok());
  GRNN_CHECK(BuildAllNn(*view_, sites_, sites_store_.get()).ok());
  GRNN_CHECK(
      UnrestrictedBuildAllNn(*view_, edge_points_, edge_store_.get())
          .ok());
  GRNN_CHECK(storage::CheckpointThrough(*pool_, *wal_).ok());

  EngineSources ns;
  ns.graph = &*view_;
  ns.points = &points_;
  ns.sites = &sites_;
  ns.knn = points_store_.get();
  ns.site_knn = sites_store_.get();
  ns.pool = pool_.get();
  ns.updates.points = &points_;
  ns.updates.sites = &sites_;
  ns.updates.knn = points_store_.get();
  ns.updates.site_knn = sites_store_.get();
  node_engine_.emplace(RknnEngine::Create(ns).ValueOrDie());

  EngineSources es;
  es.graph = &*view_;
  es.edge_points = &edge_points_;
  es.knn = edge_store_.get();
  es.pool = pool_.get();
  es.updates.edge_points = &edge_points_;
  es.updates.knn = edge_store_.get();
  es.updates.base_graph = &g_;
  edge_engine_.emplace(RknnEngine::Create(es).ValueOrDie());
}

Status CrashWorld::RunBurst(std::vector<AckedUpdate>* acked) {
  auto free_node = [&]() -> NodeId {
    for (int attempt = 0; attempt < 256; ++attempt) {
      NodeId n = static_cast<NodeId>(rng_.UniformInt(g_.num_nodes()));
      if (!points_.Contains(n) && !sites_.Contains(n)) {
        return n;
      }
    }
    return kInvalidNode;
  };
  for (size_t i = 0; i < opts_.ops; ++i) {
    UpdateSpec spec;
    RknnEngine* engine = nullptr;
    DurableKnnStore* store = nullptr;
    switch (rng_.UniformInt(6)) {
      case 0: {  // insert data point
        NodeId n = free_node();
        if (n == kInvalidNode) {
          continue;
        }
        spec = UpdateSpec::InsertPoint(n);
        engine = &*node_engine_;
        store = points_store_.get();
        break;
      }
      case 1: {  // delete data point (keep >= 3 live)
        auto live = points_.LivePoints();
        if (live.size() <= 3) {
          continue;
        }
        spec = UpdateSpec::DeletePoint(
            live[rng_.UniformInt(live.size())]);
        engine = &*node_engine_;
        store = points_store_.get();
        break;
      }
      case 2: {  // insert site
        NodeId n = free_node();
        if (n == kInvalidNode) {
          continue;
        }
        spec = UpdateSpec::InsertSite(n);
        engine = &*node_engine_;
        store = sites_store_.get();
        break;
      }
      case 3: {  // delete site
        auto live = sites_.LivePoints();
        if (live.size() <= 3) {
          continue;
        }
        spec =
            UpdateSpec::DeleteSite(live[rng_.UniformInt(live.size())]);
        engine = &*node_engine_;
        store = sites_store_.get();
        break;
      }
      case 4: {  // insert edge point
        const Edge& e = edges_[rng_.UniformInt(edges_.size())];
        spec = UpdateSpec::InsertEdgePoint(
            {e.u, e.v, rng_.Uniform(0.0, e.w)});
        engine = &*edge_engine_;
        store = edge_store_.get();
        break;
      }
      default: {  // delete edge point
        auto live = edge_points_.LivePoints();
        if (live.size() <= 3) {
          continue;
        }
        spec = UpdateSpec::DeleteEdgePoint(
            live[rng_.UniformInt(live.size())]);
        engine = &*edge_engine_;
        store = edge_store_.get();
        break;
      }
    }
    auto r = engine->ApplyUpdate(spec);
    if (!r.ok()) {
      return r.status();
    }
    if (r->stats.log_records != 1) {
      return Status::Internal(StrPrintf(
          "acked update journaled %llu records, want exactly 1",
          static_cast<unsigned long long>(r->stats.log_records)));
    }
    acked->push_back(
        {spec, r->point, store->last_commit_lsn(), store->store_id()});
  }
  return Status::OK();
}

Result<std::unique_ptr<RecoveredWorld>> CrashWorld::Recover() const {
  auto rw = std::make_unique<RecoveredWorld>();
  rw->opts = opts_;
  std::vector<Edge> edges;
  BuildLogicalWorld(opts_, &rw->g, &rw->points, &rw->sites,
                    &rw->edge_points, &edges);
  rw->view.emplace(&rw->g);

  GRNN_ASSIGN_OR_RETURN(storage::Wal wal,
                        storage::Wal::Open(wal_base_.get()));
  rw->wal = std::make_unique<storage::Wal>(std::move(wal));
  GRNN_ASSIGN_OR_RETURN(
      storage::KnnFile pf,
      storage::KnnFile::Open(data_base_.get(),
                             points_file_->first_page()));
  rw->points_file = std::make_unique<storage::KnnFile>(std::move(pf));
  GRNN_ASSIGN_OR_RETURN(
      storage::KnnFile sf,
      storage::KnnFile::Open(data_base_.get(),
                             sites_file_->first_page()));
  rw->sites_file = std::make_unique<storage::KnnFile>(std::move(sf));
  GRNN_ASSIGN_OR_RETURN(
      storage::KnnFile ef,
      storage::KnnFile::Open(data_base_.get(), edge_file_->first_page()));
  rw->edge_file = std::make_unique<storage::KnnFile>(std::move(ef));

  const std::unordered_map<uint32_t, KnnRecoveryTarget> targets = {
      {kPointsStoreId, {rw->points_file.get(), data_base_.get()}},
      {kSitesStoreId, {rw->sites_file.get(), data_base_.get()}},
      {kEdgeStoreId, {rw->edge_file.get(), data_base_.get()}},
  };
  GRNN_ASSIGN_OR_RETURN(rw->recovery, RecoverStores(*rw->wal, targets));

  // Replay the logical history: the recovered descriptors, applied in
  // lsn order to the seeded initial placements, must reassign exactly
  // the point ids they journaled — that is what makes the recovered
  // stores and the replayed sets one consistent world.
  for (const JournaledUpdate& u : rw->recovery.updates) {
    switch (u.desc.op) {
      case UpdateDescriptor::Op::kInsertPoint: {
        NodePointSet* set =
            u.desc.domain == static_cast<uint32_t>(UpdateSet::kSites)
                ? &rw->sites
                : &rw->points;
        GRNN_ASSIGN_OR_RETURN(PointId id, set->AddPoint(u.desc.node));
        if (id != u.desc.point) {
          return Status::Corruption(StrPrintf(
              "replaying lsn=%llu reassigned point %u, journal says %u",
              static_cast<unsigned long long>(u.lsn), id, u.desc.point));
        }
        break;
      }
      case UpdateDescriptor::Op::kDeletePoint: {
        NodePointSet* set =
            u.desc.domain == static_cast<uint32_t>(UpdateSet::kSites)
                ? &rw->sites
                : &rw->points;
        GRNN_RETURN_NOT_OK(set->RemovePoint(u.desc.point));
        break;
      }
      case UpdateDescriptor::Op::kInsertEdgePoint: {
        GRNN_ASSIGN_OR_RETURN(
            PointId id,
            rw->edge_points.AddPoint(
                rw->g, {u.desc.edge_u, u.desc.edge_v,
                        u.desc.edge_offset}));
        if (id != u.desc.point) {
          return Status::Corruption(StrPrintf(
              "replaying lsn=%llu reassigned edge point %u, journal "
              "says %u",
              static_cast<unsigned long long>(u.lsn), id, u.desc.point));
        }
        break;
      }
      case UpdateDescriptor::Op::kDeleteEdgePoint: {
        GRNN_RETURN_NOT_OK(rw->edge_points.RemovePoint(u.desc.point));
        break;
      }
      case UpdateDescriptor::Op::kNone:
        return Status::Corruption(StrPrintf(
            "recovered descriptor lsn=%llu has op none",
            static_cast<unsigned long long>(u.lsn)));
    }
  }

  // Live serving state over the recovered devices: updates through
  // these engines keep journaling into the reopened log.
  rw->pool = std::make_unique<storage::BufferPool>(data_base_.get(),
                                                   opts_.pool_frames);
  rw->pool->AttachWal(rw->wal.get());
  rw->points_store = std::make_unique<DurableKnnStore>(
      rw->points_file.get(), rw->pool.get(), rw->wal.get(),
      kPointsStoreId);
  rw->sites_store = std::make_unique<DurableKnnStore>(
      rw->sites_file.get(), rw->pool.get(), rw->wal.get(),
      kSitesStoreId);
  rw->edge_store = std::make_unique<DurableKnnStore>(
      rw->edge_file.get(), rw->pool.get(), rw->wal.get(), kEdgeStoreId);

  EngineSources ns;
  ns.graph = &*rw->view;
  ns.points = &rw->points;
  ns.sites = &rw->sites;
  ns.knn = rw->points_store.get();
  ns.site_knn = rw->sites_store.get();
  ns.pool = rw->pool.get();
  ns.updates.points = &rw->points;
  ns.updates.sites = &rw->sites;
  ns.updates.knn = rw->points_store.get();
  ns.updates.site_knn = rw->sites_store.get();
  GRNN_ASSIGN_OR_RETURN(RknnEngine ne, RknnEngine::Create(ns));
  rw->node_engine.emplace(std::move(ne));

  EngineSources es;
  es.graph = &*rw->view;
  es.edge_points = &rw->edge_points;
  es.knn = rw->edge_store.get();
  es.pool = rw->pool.get();
  es.updates.edge_points = &rw->edge_points;
  es.updates.knn = rw->edge_store.get();
  es.updates.base_graph = &rw->g;
  GRNN_ASSIGN_OR_RETURN(RknnEngine ee, RknnEngine::Create(es));
  rw->edge_engine.emplace(std::move(ee));
  return rw;
}

Status CheckAckedPrefix(const RecoveredWorld& rw,
                        const std::vector<AckedUpdate>& acked) {
  if (rw.recovery.updates.size() < acked.size()) {
    return Status::Corruption(StrPrintf(
        "%zu updates acknowledged but only %zu recovered — durable "
        "updates were lost",
        acked.size(), rw.recovery.updates.size()));
  }
  for (size_t i = 0; i < acked.size(); ++i) {
    const JournaledUpdate& u = rw.recovery.updates[i];
    if (u.lsn != acked[i].lsn) {
      return Status::Corruption(StrPrintf(
          "acked update %zu has lsn %llu, recovered record %zu has "
          "lsn %llu",
          i, static_cast<unsigned long long>(acked[i].lsn), i,
          static_cast<unsigned long long>(u.lsn)));
    }
    GRNN_RETURN_NOT_OK(MatchRecord(acked[i], u));
  }
  return Status::OK();
}

Status CheckAckedDurable(const RecoveredWorld& rw,
                         const std::vector<AckedUpdate>& acked) {
  std::unordered_map<uint64_t, const JournaledUpdate*> by_lsn;
  for (const JournaledUpdate& u : rw.recovery.updates) {
    by_lsn.emplace(u.lsn, &u);
  }
  for (const AckedUpdate& a : acked) {
    auto it = by_lsn.find(a.lsn);
    if (it == by_lsn.end()) {
      return Status::Corruption(StrPrintf(
          "acknowledged update lsn=%llu missing from the recovered log",
          static_cast<unsigned long long>(a.lsn)));
    }
    GRNN_RETURN_NOT_OK(MatchRecord(a, *it->second));
  }
  return Status::OK();
}

Status CheckStoresMatchRebuild(RecoveredWorld& rw) {
  const NodeId n = rw.g.num_nodes();
  MemoryKnnStore fresh_points(n, rw.opts.capacity);
  GRNN_RETURN_NOT_OK(BuildAllNn(*rw.view, rw.points, &fresh_points));
  GRNN_RETURN_NOT_OK(
      CompareStore(*rw.points_store, fresh_points, n, "points"));
  MemoryKnnStore fresh_sites(n, rw.opts.capacity);
  GRNN_RETURN_NOT_OK(BuildAllNn(*rw.view, rw.sites, &fresh_sites));
  GRNN_RETURN_NOT_OK(
      CompareStore(*rw.sites_store, fresh_sites, n, "sites"));
  MemoryKnnStore fresh_edge(n, rw.opts.capacity);
  GRNN_RETURN_NOT_OK(
      UnrestrictedBuildAllNn(*rw.view, rw.edge_points, &fresh_edge));
  GRNN_RETURN_NOT_OK(
      CompareStore(*rw.edge_store, fresh_edge, n, "edge_points"));
  return Status::OK();
}

Status CheckRecoveryIdempotent(const CrashWorld& world) {
  // Second recovery from the same surviving devices: the page-LSN
  // filter must reject every replayed list (recover-twice ==
  // recover-once).
  GRNN_ASSIGN_OR_RETURN(std::unique_ptr<RecoveredWorld> again,
                        world.Recover());
  if (again->recovery.pages_written != 0) {
    return Status::Corruption(StrPrintf(
        "second recovery rewrote %zu pages; redo is not idempotent",
        again->recovery.pages_written));
  }
  return Status::OK();
}

Status CheckQueryMatrix(RecoveredWorld& rw, uint64_t seed) {
  Rng rng(seed * 977 + 13);
  const NodeId num_nodes = rw.g.num_nodes();
  const auto edges = rw.g.CollectEdges();
  const int max_k = static_cast<int>(rw.opts.capacity) - 1;

  auto run = [&](RknnEngine& engine,
                 const QuerySpec& spec) -> Status {
    auto result = engine.Run(spec);
    if (!result.ok()) {
      return result.status();
    }
    QuerySpec oracle_spec = spec;
    oracle_spec.algorithm = Algorithm::kBruteForce;
    auto oracle = engine.Run(oracle_spec);
    if (!oracle.ok()) {
      return oracle.status();
    }
    if (Ids(*result) != Ids(*oracle)) {
      return Status::Corruption(StrPrintf(
          "recovered world: kind=%s algo=%s k=%d exclude=%u diverges "
          "from brute force",
          QueryKindName(spec.kind), AlgorithmName(spec.algorithm),
          spec.k, spec.exclude_point));
    }
    return Status::OK();
  };

  auto make_route = [&]() {
    std::vector<NodeId> route;
    NodeId cur = static_cast<NodeId>(rng.UniformInt(num_nodes));
    route.push_back(cur);
    for (int hop = 0; hop < 4; ++hop) {
      auto nbrs = rw.g.Neighbors(cur);
      cur = nbrs[rng.UniformInt(nbrs.size())].node;
      route.push_back(cur);
    }
    return route;
  };

  const auto live_points = rw.points.LivePoints();
  const auto live_sites = rw.sites.LivePoints();
  const auto live_edge = rw.edge_points.LivePoints();
  for (Algorithm algo : kAllAlgorithms) {
    for (int k = 1; k <= max_k; ++k) {
      for (bool exclude : {true, false}) {
        // Monochromatic + bichromatic + continuous via the node engine.
        if (exclude && !live_points.empty()) {
          PointId qp = live_points[rng.UniformInt(live_points.size())];
          GRNN_RETURN_NOT_OK(
              run(*rw.node_engine,
                  QuerySpec::Monochromatic(algo, rw.points.NodeOf(qp),
                                           k, qp)));
        } else if (!exclude) {
          GRNN_RETURN_NOT_OK(run(
              *rw.node_engine,
              QuerySpec::Monochromatic(
                  algo, static_cast<NodeId>(rng.UniformInt(num_nodes)),
                  k)));
        }
        if (exclude && !live_sites.empty()) {
          PointId qs = live_sites[rng.UniformInt(live_sites.size())];
          GRNN_RETURN_NOT_OK(
              run(*rw.node_engine,
                  QuerySpec::Bichromatic(algo, rw.sites.NodeOf(qs), k,
                                         qs)));
        } else if (!exclude) {
          GRNN_RETURN_NOT_OK(run(
              *rw.node_engine,
              QuerySpec::Bichromatic(
                  algo, static_cast<NodeId>(rng.UniformInt(num_nodes)),
                  k)));
        }
        {
          PointId excl = kInvalidPoint;
          if (exclude && !live_points.empty()) {
            excl = live_points[rng.UniformInt(live_points.size())];
          }
          GRNN_RETURN_NOT_OK(
              run(*rw.node_engine,
                  QuerySpec::Continuous(algo, make_route(), k, excl)));
        }
        // Unrestricted + continuous via the edge engine.
        if (exclude && !live_edge.empty()) {
          PointId qe = live_edge[rng.UniformInt(live_edge.size())];
          GRNN_RETURN_NOT_OK(
              run(*rw.edge_engine,
                  QuerySpec::Unrestricted(
                      algo, rw.edge_points.PositionOf(qe), k, qe)));
        } else if (!exclude) {
          const Edge& e = edges[rng.UniformInt(edges.size())];
          GRNN_RETURN_NOT_OK(run(
              *rw.edge_engine,
              QuerySpec::Unrestricted(
                  algo, EdgePosition{e.u, e.v, rng.Uniform(0.0, e.w)},
                  k)));
        }
        {
          PointId excl = kInvalidPoint;
          if (exclude && !live_edge.empty()) {
            excl = live_edge[rng.UniformInt(live_edge.size())];
          }
          GRNN_RETURN_NOT_OK(
              run(*rw.edge_engine,
                  QuerySpec::Continuous(algo, make_route(), k, excl)));
        }
      }
    }
  }
  return Status::OK();
}

Status CheckRecovered(const CrashWorld& world, RecoveredWorld& rw,
                      const std::vector<AckedUpdate>& acked) {
  GRNN_RETURN_NOT_OK(CheckAckedPrefix(rw, acked));
  GRNN_RETURN_NOT_OK(CheckStoresMatchRebuild(rw));
  GRNN_RETURN_NOT_OK(CheckRecoveryIdempotent(world));
  return Status::OK();
}

uint64_t CountWritePoints(const CrashWorldOptions& opts) {
  CrashController ctl;
  CrashWorld world(opts, &ctl);
  ctl.StartCounting();
  std::vector<AckedUpdate> acked;
  const Status burst = world.RunBurst(&acked);
  GRNN_CHECK(burst.ok());
  ctl.Disarm();
  return ctl.points_seen();
}

Status RunCrashCycle(const CrashWorldOptions& opts, uint64_t point,
                     FaultAction action, CrashSurvival survival,
                     bool check_queries, CrashCycleReport* report) {
  if (action == FaultAction::kTransient) {
    return Status::InvalidArgument(
        "crash cycles need a crashing action (kFailStop/kTornWrite)");
  }
  CrashController ctl;
  CrashWorld world(opts, &ctl);
  ctl.ArmAt(point, action, survival);
  std::vector<AckedUpdate> acked;
  const Status burst = world.RunBurst(&acked);
  if (!burst.ok() && !ctl.crashed()) {
    return Status::Internal(
        "burst failed without an injected crash: " + burst.ToString());
  }
  ctl.Disarm();
  const bool tripped = ctl.crashed();
  if (!tripped) {
    // The burst outran the armed point; crash at the end so recovery
    // still runs against this world.
    ctl.CrashNow(survival);
  }
  GRNN_ASSIGN_OR_RETURN(std::unique_ptr<RecoveredWorld> rw,
                        world.Recover());
  GRNN_RETURN_NOT_OK(CheckRecovered(world, *rw, acked));
  if (check_queries) {
    GRNN_RETURN_NOT_OK(CheckQueryMatrix(*rw, opts.seed));
  }
  if (report != nullptr) {
    report->acked = acked.size();
    report->tripped = tripped;
    report->records_replayed = rw->recovery.records_replayed;
    report->pages_written = rw->recovery.pages_written;
    report->tail_truncated = rw->recovery.tail_truncated;
  }
  return Status::OK();
}

}  // namespace grnn::core::testing
