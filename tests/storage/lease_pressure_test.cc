// Pin-reservation guard (PR 5, the ROADMAP open item from PR 4): when
// held cursor leases squeeze a buffer-pool shard's free-frame count
// below kLeaseShardFreeFrameFloor, lease_friendly(page) flips to false
// and NEW scans degrade to copy-and-unpin — so a fleet of held cursors
// can never pin a shard down into ResourceExhausted. Without the guard,
// the scenario below (more single-page adjacency lists than frames, one
// shard, every scan's cursor kept alive) exhausts the pool on the 33rd
// scan; with it, every scan succeeds and the shard always keeps frames
// free for nested expansion pins.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/network_view.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/graph_file.h"
#include "storage/stored_graph.h"

namespace grnn::storage {
namespace {

// 40-node circulant graph, degree 24: each adjacency list fills 384 of
// a 512-byte page's 496 record bytes, so (with boundary padding) every
// node owns exactly one page — 40 single-page lists.
graph::Graph CirculantGraph() {
  std::vector<Edge> edges;
  const NodeId n = 40;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId d = 1; d <= 12; ++d) {
      edges.push_back({i, (i + d) % n, 1.0 + d});
    }
  }
  for (Edge& e : edges) {
    if (e.u > e.v) {
      std::swap(e.u, e.v);
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return graph::Graph::FromEdges(n, edges).ValueOrDie();
}

TEST(LeasePressure, HeldCursorsCannotExhaustAOneShardPool) {
  auto g = CirculantGraph();
  MemoryDiskManager disk(512);
  auto file =
      GraphFile::Build(g, &disk, GraphFileOptions{}).ValueOrDie();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(file.PagesSpanned(v), 1u) << "node " << v;
  }

  // One shard, 32 frames: statically lease-friendly (>=
  // kMinFramesPerShardForLease), but fewer frames than lists — held
  // leases alone could pin down every frame without the guard.
  BufferPool pool(&disk, 32, ReplacementPolicy::kLru, 1);
  ASSERT_TRUE(pool.lease_friendly());
  StoredGraph view(&file, &pool);

  // Scan every node through its own long-lived cursor, keeping all
  // spans alive. Every scan must succeed; the guard caps how many can
  // actually lease.
  std::vector<std::unique_ptr<graph::NeighborCursor>> cursors;
  size_t leased = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    cursors.push_back(std::make_unique<graph::NeighborCursor>());
    auto span = view.Scan(v, *cursors.back());
    ASSERT_TRUE(span.ok()) << "node " << v << ": "
                           << span.status().ToString();
    ASSERT_EQ(span->size(), g.Neighbors(v).size());
    EXPECT_TRUE(std::equal(span->begin(), span->end(),
                           g.Neighbors(v).begin()))
        << "node " << v;
    leased += cursors.back()->held_pins();
  }
  // The floor held: leases stopped before the shard ran dry.
  EXPECT_LE(leased, pool.capacity() - kLeaseShardFreeFrameFloor);
  EXPECT_GT(leased, 0u);
  EXPECT_LT(leased, static_cast<size_t>(g.num_nodes()))
      << "some scans should have degraded to copy mode";
  EXPECT_EQ(pool.num_pinned(), leased);

  // Under pressure a new scan of an unleased page degrades to copy
  // mode: its own pin would push the shard below the floor.
  {
    graph::NeighborCursor probe;
    const NodeId degraded = static_cast<NodeId>(g.num_nodes() - 1);
    auto span = view.Scan(degraded, probe);
    ASSERT_TRUE(span.ok());
    EXPECT_EQ(probe.held_pins(), 0u);
  }

  // A whole extra pass over the graph still succeeds without a single
  // ResourceExhausted, spans correct.
  graph::NeighborCursor extra;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto span = view.Scan(v, extra);
    ASSERT_TRUE(span.ok()) << "node " << v << ": "
                           << span.status().ToString();
    EXPECT_TRUE(std::equal(span->begin(), span->end(),
                           g.Neighbors(v).begin()));
  }
  extra.Reset();
  EXPECT_EQ(pool.num_pinned(), leased);
  EXPECT_LE(pool.num_pinned(),
            pool.capacity() - kLeaseShardFreeFrameFloor);

  // Dropping the held cursors drains the pressure: leases come back.
  cursors.clear();
  EXPECT_EQ(pool.num_pinned(), 0u);
  EXPECT_TRUE(pool.lease_friendly(file.first_page()));
  auto span = view.Scan(0, extra);
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(extra.held_pins(), 1u);
  extra.Reset();
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(LeasePressure, ProbeHonoursStaticFloorAndUnbufferedPools) {
  auto g = CirculantGraph();
  MemoryDiskManager disk(512);
  auto file =
      GraphFile::Build(g, &disk, GraphFileOptions{}).ValueOrDie();
  {
    // Below the static per-shard budget: never lease-friendly,
    // regardless of pressure.
    BufferPool pool(&disk, 8, ReplacementPolicy::kLru, 1);
    EXPECT_FALSE(pool.lease_friendly());
    EXPECT_FALSE(pool.lease_friendly(file.first_page()));
  }
  {
    // Unbuffered: guards hand out private copies and pin nothing, so
    // the probe stays true.
    BufferPool pool(&disk, 0);
    EXPECT_TRUE(pool.lease_friendly());
    EXPECT_TRUE(pool.lease_friendly(file.first_page()));
  }
}

}  // namespace
}  // namespace grnn::storage
