// Workload generators: structural properties the paper's evaluation
// depends on (degree, connectivity, determinism, expansion behaviour).

#include <gtest/gtest.h>

#include <cmath>

#include "gen/brite.h"
#include "gen/coauthorship.h"
#include "gen/grid.h"
#include "gen/points.h"
#include "gen/road_network.h"
#include "graph/connectivity.h"
#include "graph/dijkstra.h"
#include "graph/network_view.h"

namespace grnn::gen {
namespace {

TEST(BriteTest, AverageDegreeIsTwoM) {
  BriteConfig cfg;
  cfg.num_nodes = 5000;
  cfg.edges_per_node = 2;
  auto g = GenerateBrite(cfg).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 5000u);
  EXPECT_NEAR(g.AverageDegree(), 4.0, 0.1);
}

TEST(BriteTest, Connected) {
  BriteConfig cfg;
  cfg.num_nodes = 2000;
  auto g = GenerateBrite(cfg).ValueOrDie();
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(BriteTest, DeterministicPerSeed) {
  BriteConfig cfg;
  cfg.num_nodes = 500;
  auto a = GenerateBrite(cfg).ValueOrDie();
  auto b = GenerateBrite(cfg).ValueOrDie();
  EXPECT_EQ(a.CollectEdges(), b.CollectEdges());
  cfg.seed = 99;
  auto c = GenerateBrite(cfg).ValueOrDie();
  EXPECT_NE(a.CollectEdges(), c.CollectEdges());
}

TEST(BriteTest, ScaleFreeHubsExist) {
  BriteConfig cfg;
  cfg.num_nodes = 5000;
  auto g = GenerateBrite(cfg).ValueOrDie();
  size_t max_degree = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    max_degree = std::max(max_degree, g.Degree(n));
  }
  // Preferential attachment produces hubs far above the mean degree.
  EXPECT_GT(max_degree, 50u);
}

TEST(BriteTest, ExponentialExpansion) {
  // The property driving Figs 15-16: hop-balls grow geometrically, so a
  // small number of hops covers most of the network.
  BriteConfig cfg;
  cfg.num_nodes = 20000;
  auto g = GenerateBrite(cfg).ValueOrDie();
  graph::GraphView view(&g);
  auto dist = graph::SingleSourceDistances(view, 0).ValueOrDie();
  size_t within6 = 0;
  for (Weight d : dist) {
    within6 += (d <= 6.0);
  }
  EXPECT_GT(within6, g.num_nodes() / 2);
}

TEST(BriteTest, WeightedVariant) {
  BriteConfig cfg;
  cfg.num_nodes = 300;
  cfg.unit_weights = false;
  cfg.min_weight = 2.0;
  cfg.max_weight = 5.0;
  auto g = GenerateBrite(cfg).ValueOrDie();
  for (const Edge& e : g.CollectEdges()) {
    EXPECT_GE(e.w, 2.0);
    EXPECT_LT(e.w, 5.0);
  }
}

TEST(BriteTest, RejectsBadConfig) {
  BriteConfig cfg;
  cfg.num_nodes = 2;
  cfg.edges_per_node = 2;
  EXPECT_FALSE(GenerateBrite(cfg).ok());
  cfg.num_nodes = 100;
  cfg.edges_per_node = 0;
  EXPECT_FALSE(GenerateBrite(cfg).ok());
}

TEST(GridTest, PlainGridDegree) {
  GridConfig cfg;
  cfg.rows = 40;
  cfg.cols = 40;
  auto g = GenerateGrid(cfg).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 1600u);
  // 2*r*c - r - c edges.
  EXPECT_EQ(g.num_edges(), 2u * 1600 - 40 - 40);
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(GridTest, DegreeControl) {
  GridConfig plain;
  plain.rows = 60;
  plain.cols = 60;
  const double base =
      GenerateGrid(plain).ValueOrDie().AverageDegree();
  for (double target : {5.0, 6.0, 7.0}) {
    GridConfig cfg;
    cfg.rows = 60;
    cfg.cols = 60;
    cfg.avg_degree = target;
    auto g = GenerateGrid(cfg).ValueOrDie();
    // Target is relative to the plain grid's "degree 4".
    EXPECT_NEAR(g.AverageDegree(), base + (target - 4.0), 0.1)
        << "target " << target;
    EXPECT_TRUE(graph::IsConnected(g));
  }
}

TEST(GridTest, Deterministic) {
  GridConfig cfg;
  cfg.rows = 20;
  cfg.cols = 25;
  cfg.avg_degree = 5.0;
  auto a = GenerateGrid(cfg).ValueOrDie();
  auto b = GenerateGrid(cfg).ValueOrDie();
  EXPECT_EQ(a.CollectEdges(), b.CollectEdges());
}

TEST(GridTest, RejectsBadConfig) {
  GridConfig cfg;
  cfg.rows = 1;
  EXPECT_FALSE(GenerateGrid(cfg).ok());
  cfg.rows = 10;
  cfg.cols = 10;
  cfg.avg_degree = 2.0;
  EXPECT_FALSE(GenerateGrid(cfg).ok());
}

TEST(RoadTest, SfLikeShape) {
  RoadConfig cfg;
  cfg.num_nodes = 20000;
  auto net = GenerateRoadNetwork(cfg).ValueOrDie();
  EXPECT_EQ(net.g.num_nodes(), 20000u);
  EXPECT_TRUE(graph::IsConnected(net.g));
  // SF has average degree ~2.55; accept the neighborhood of that.
  EXPECT_GT(net.g.AverageDegree(), 2.1);
  EXPECT_LT(net.g.AverageDegree(), 3.6);
  EXPECT_EQ(net.coords.size(), 20000u);
}

TEST(RoadTest, EuclideanWeights) {
  RoadConfig cfg;
  cfg.num_nodes = 2000;
  auto net = GenerateRoadNetwork(cfg).ValueOrDie();
  for (const Edge& e : net.g.CollectEdges()) {
    double dx = net.coords[e.u].first - net.coords[e.v].first;
    double dy = net.coords[e.u].second - net.coords[e.v].second;
    EXPECT_NEAR(e.w, std::sqrt(dx * dx + dy * dy), 1e-6);
  }
}

TEST(RoadTest, NoExponentialExpansion) {
  // Spatial locality: hop-balls grow polynomially; a 6-hop ball must stay
  // a small fraction of the network (contrast with BriteTest above).
  RoadConfig cfg;
  cfg.num_nodes = 20000;
  auto net = GenerateRoadNetwork(cfg).ValueOrDie();
  graph::GraphView view(&net.g);
  // Hop distances: treat weights as 1 by counting expansion steps.
  auto unit_edges = net.g.CollectEdges();
  for (Edge& e : unit_edges) {
    e.w = 1.0;
  }
  auto unit_g =
      graph::Graph::FromEdges(net.g.num_nodes(), unit_edges).ValueOrDie();
  graph::GraphView unit_view(&unit_g);
  auto dist = graph::SingleSourceDistances(unit_view, 0).ValueOrDie();
  size_t within6 = 0;
  for (Weight d : dist) {
    within6 += (d <= 6.0);
  }
  EXPECT_LT(within6, net.g.num_nodes() / 20);
}

TEST(RoadTest, Deterministic) {
  RoadConfig cfg;
  cfg.num_nodes = 1000;
  auto a = GenerateRoadNetwork(cfg).ValueOrDie();
  auto b = GenerateRoadNetwork(cfg).ValueOrDie();
  EXPECT_EQ(a.g.CollectEdges(), b.g.CollectEdges());
}

TEST(CoauthorTest, DblpLikeShape) {
  CoauthorConfig cfg;
  cfg.num_papers = 6000;
  auto net = GenerateCoauthorship(cfg).ValueOrDie();
  EXPECT_TRUE(graph::IsConnected(net.g));
  EXPECT_GT(net.g.num_nodes(), 1000u);
  // DBLP: 4260 nodes, 13199 edges -> avg degree ~6.2; accept broadly.
  EXPECT_GT(net.g.AverageDegree(), 3.0);
  EXPECT_LT(net.g.AverageDegree(), 12.0);
  // Unit weights throughout.
  for (const Edge& e : net.g.CollectEdges()) {
    EXPECT_DOUBLE_EQ(e.w, 1.0);
  }
  EXPECT_EQ(net.venue0_papers.size(), net.g.num_nodes());
}

TEST(CoauthorTest, PaperCountSelectivityDecreases) {
  // Table 1: most authors have 0 venue-0 papers; the count of authors
  // with exactly c papers shrinks as c grows.
  CoauthorConfig cfg;
  cfg.num_papers = 6000;
  auto net = GenerateCoauthorship(cfg).ValueOrDie();
  size_t c0 = 0, c1 = 0, c2 = 0;
  for (uint32_t c : net.venue0_papers) {
    c0 += (c == 0);
    c1 += (c == 1);
    c2 += (c == 2);
  }
  EXPECT_GT(c0, c1);
  EXPECT_GT(c1, c2);
  EXPECT_GT(c2, 0u);
}

TEST(CoauthorTest, Deterministic) {
  CoauthorConfig cfg;
  cfg.num_papers = 800;
  auto a = GenerateCoauthorship(cfg).ValueOrDie();
  auto b = GenerateCoauthorship(cfg).ValueOrDie();
  EXPECT_EQ(a.g.CollectEdges(), b.g.CollectEdges());
  EXPECT_EQ(a.venue0_papers, b.venue0_papers);
}

TEST(PointsTest, NodeDensity) {
  Rng rng(3);
  auto pts = PlaceNodePoints(1000, 0.05, rng).ValueOrDie();
  EXPECT_EQ(pts.num_points(), 50u);
  EXPECT_NEAR(pts.Density(), 0.05, 1e-9);
  EXPECT_FALSE(PlaceNodePoints(1000, 0.0, rng).ok());
  EXPECT_FALSE(PlaceNodePoints(1000, 1.5, rng).ok());
}

TEST(PointsTest, EdgeDensity) {
  Rng rng(5);
  GridConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  auto g = GenerateGrid(cfg).ValueOrDie();
  auto pts = PlaceEdgePoints(g, 0.05, rng).ValueOrDie();
  EXPECT_EQ(pts.num_points(), 20u);  // 400 nodes * 0.05
}

TEST(PointsTest, QuerySamplesAreLivePoints) {
  Rng rng(7);
  auto pts = PlaceNodePoints(500, 0.1, rng).ValueOrDie();
  auto queries = SampleQueryPoints(pts, 50, rng);
  EXPECT_EQ(queries.size(), 50u);
  for (PointId q : queries) {
    EXPECT_TRUE(pts.IsLive(q));
  }
}

TEST(PointsTest, RandomWalkRouteHasNoRepeats) {
  Rng rng(9);
  GridConfig cfg;
  cfg.rows = 30;
  cfg.cols = 30;
  auto g = GenerateGrid(cfg).ValueOrDie();
  auto route = RandomWalkRoute(g, 55, 25, rng);
  // Self-avoiding walks may trap themselves; length is best-effort.
  EXPECT_GE(route.size(), 5u);
  EXPECT_LE(route.size(), 25u);
  std::set<NodeId> uniq(route.begin(), route.end());
  EXPECT_EQ(uniq.size(), route.size());
  // Consecutive nodes are adjacent.
  for (size_t i = 1; i < route.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(route[i - 1], route[i]));
  }
}

}  // namespace
}  // namespace grnn::gen
