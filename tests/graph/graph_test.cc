#include "graph/graph.h"

#include <gtest/gtest.h>

namespace grnn::graph {
namespace {

// The running example of the paper (Fig 3a): 7 nodes, weighted edges.
// n1..n7 map to ids 0..6. Weights chosen to match the figure's distances:
// d(q=n4, n3)=4, d(q,n1)=5, d(n3,p1@n6)=3, d(n1,p2@n5)=3.
std::vector<Edge> PaperFig3Edges() {
  return {
      {0, 3, 5.0},  // n1-n4
      {0, 4, 3.0},  // n1-n5
      {0, 1, 2.0},  // n1-n2
      {1, 4, 2.0},  // n2-n5
      {1, 5, 3.0},  // n2-n6
      {2, 3, 4.0},  // n3-n4
      {2, 5, 3.0},  // n3-n6
      {2, 6, 5.0},  // n3-n7
      {4, 6, 6.0},  // n5-n7
  };
}

TEST(GraphTest, BuildsFromEdges) {
  auto g = Graph::FromEdges(7, PaperFig3Edges());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 7u);
  EXPECT_EQ(g->num_edges(), 9u);
}

TEST(GraphTest, NeighborsSortedAndSymmetric) {
  auto g = Graph::FromEdges(7, PaperFig3Edges()).ValueOrDie();
  auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 3u);
  EXPECT_EQ(n0[0].node, 1u);
  EXPECT_EQ(n0[1].node, 3u);
  EXPECT_EQ(n0[2].node, 4u);
  // Symmetry: 3 sees 0 with the same weight.
  EXPECT_TRUE(g.HasEdge(3, 0));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(3, 0).ValueOrDie(), 5.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 3).ValueOrDie(), 5.0);
}

TEST(GraphTest, DegreeAndAverageDegree) {
  auto g = Graph::FromEdges(7, PaperFig3Edges()).ValueOrDie();
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(6), 2u);
  EXPECT_NEAR(g.AverageDegree(), 2.0 * 9 / 7, 1e-12);
}

TEST(GraphTest, HasEdgeNegativeCases) {
  auto g = Graph::FromEdges(7, PaperFig3Edges()).ValueOrDie();
  EXPECT_FALSE(g.HasEdge(0, 6));
  EXPECT_FALSE(g.HasEdge(0, 100));
  EXPECT_TRUE(g.EdgeWeight(0, 6).status().IsNotFound());
}

TEST(GraphTest, CollectEdgesRoundTrips) {
  auto edges = PaperFig3Edges();
  auto g = Graph::FromEdges(7, edges).ValueOrDie();
  auto collected = g.CollectEdges();
  EXPECT_EQ(collected.size(), edges.size());
  auto g2 = Graph::FromEdges(7, collected).ValueOrDie();
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (NodeId n = 0; n < 7; ++n) {
    EXPECT_EQ(g2.Degree(n), g.Degree(n));
  }
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  auto r = Graph::FromEdges(3, {{0, 5, 1.0}});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(GraphTest, RejectsSelfLoop) {
  auto r = Graph::FromEdges(3, {{1, 1, 1.0}});
  EXPECT_FALSE(r.ok());
}

TEST(GraphTest, RejectsNonPositiveWeight) {
  EXPECT_FALSE(Graph::FromEdges(3, {{0, 1, 0.0}}).ok());
  EXPECT_FALSE(Graph::FromEdges(3, {{0, 1, -2.0}}).ok());
}

TEST(GraphTest, RejectsDuplicateEdges) {
  EXPECT_FALSE(Graph::FromEdges(3, {{0, 1, 1.0}, {0, 1, 2.0}}).ok());
  // Also in reversed orientation.
  EXPECT_FALSE(Graph::FromEdges(3, {{0, 1, 1.0}, {1, 0, 2.0}}).ok());
}

TEST(GraphTest, EmptyGraphAllowed) {
  auto g = Graph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0u);
  EXPECT_EQ(g->AverageDegree(), 0.0);
}

TEST(GraphTest, IsolatedNodesHaveEmptyNeighbors) {
  auto g = Graph::FromEdges(4, {{0, 1, 1.0}}).ValueOrDie();
  EXPECT_TRUE(g.Neighbors(2).empty());
  EXPECT_TRUE(g.Neighbors(3).empty());
}

}  // namespace
}  // namespace grnn::graph
