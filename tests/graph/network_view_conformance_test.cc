// NetworkView conformance suite (PR 4): every implementation of the
// cursor/lease Scan API must produce identical scans — GraphView (CSR),
// StoredGraph over the v1 packed layout, and StoredGraph over the v2
// aligned layout in its three serving modes (zero-copy lease, tiny-pool
// copy, unbuffered private copy). On top of scan equality, the suite
// enforces the pin discipline: no buffer-pool pin survives cursor
// Reset/destruction, early-exit paths included, and no pin survives an
// engine query.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/point_set.h"
#include "graph/network_view.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/graph_file.h"
#include "storage/stored_graph.h"

namespace grnn::graph {
namespace {

Graph TestGraph(uint64_t seed) {
  Rng rng(seed);
  const NodeId n = 120;
  std::vector<Edge> edges;
  // Connected backbone + random chords; node 0 becomes a hub whose list
  // spans multiple pages under the small page size below.
  for (NodeId u = 0; u + 1 < n; ++u) {
    edges.push_back({u, static_cast<NodeId>(u + 1), rng.Uniform(0.1, 5.0)});
  }
  for (int i = 0; i < 200; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v) {
      continue;
    }
    Edge e{std::min(u, v), std::max(u, v), rng.Uniform(0.1, 5.0)};
    bool dup = std::any_of(edges.begin(), edges.end(), [&](const Edge& x) {
      return x.u == e.u && x.v == e.v;
    });
    if (!dup) {
      edges.push_back(e);
    }
  }
  for (NodeId leaf = 1; leaf < 40; ++leaf) {
    // widen node 0's list past one page
    bool dup = std::any_of(edges.begin(), edges.end(), [&](const Edge& x) {
      return x.u == 0 && x.v == leaf + 60;
    });
    if (!dup) {
      edges.push_back({0, static_cast<NodeId>(leaf + 60), 1.0});
    }
  }
  return Graph::FromEdges(n, edges).ValueOrDie();
}

enum class ViewKind {
  kGraphView,
  kStoredV1,
  kStoredV2Lease,     // pool passes lease_friendly(): zero-copy spans
  kStoredV2TinyPool,  // copy-and-unpin mode
  kStoredV2Unbuffered,
};

struct ViewEnv {
  // Pointees owned here so the view's raw pointers stay valid.
  std::unique_ptr<storage::MemoryDiskManager> disk;
  std::unique_ptr<storage::GraphFile> file;
  std::unique_ptr<storage::BufferPool> pool;
  std::optional<GraphView> graph_view;
  std::optional<storage::StoredGraph> stored_view;

  const NetworkView& view() const {
    return graph_view ? static_cast<const NetworkView&>(*graph_view)
                      : *stored_view;
  }
  size_t pinned() const {
    return pool == nullptr ? 0 : pool->num_pinned();
  }
};

ViewEnv MakeEnv(ViewKind kind, const Graph& g) {
  ViewEnv env;
  if (kind == ViewKind::kGraphView) {
    env.graph_view.emplace(&g);
    return env;
  }
  // Small pages so multi-page lists actually occur in the fixture.
  env.disk = std::make_unique<storage::MemoryDiskManager>(256);
  storage::GraphFileOptions opts;
  opts.layout = kind == ViewKind::kStoredV1
                    ? storage::PageLayout::kV1Packed
                    : storage::PageLayout::kV2Aligned;
  env.file = std::make_unique<storage::GraphFile>(
      storage::GraphFile::Build(g, env.disk.get(), opts).ValueOrDie());
  size_t capacity = 64;  // lease-friendly
  if (kind == ViewKind::kStoredV2TinyPool) {
    capacity = 4;  // below kMinFramesPerShardForLease: copy mode
  } else if (kind == ViewKind::kStoredV2Unbuffered) {
    capacity = 0;  // every acquire is a private copy
  }
  env.pool = std::make_unique<storage::BufferPool>(env.disk.get(),
                                                   capacity);
  env.stored_view.emplace(env.file.get(), env.pool.get());
  return env;
}

class NetworkViewConformanceTest
    : public ::testing::TestWithParam<ViewKind> {};

TEST_P(NetworkViewConformanceTest, ScansMatchGraphExactly) {
  Graph g = TestGraph(7);
  ViewEnv env = MakeEnv(GetParam(), g);
  {
    NeighborCursor cursor;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      auto scan = env.view().Scan(n, cursor);
      ASSERT_TRUE(scan.ok()) << scan.status().ToString();
      auto want = g.Neighbors(n);
      ASSERT_EQ(scan->size(), want.size()) << "node " << n;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ((*scan)[i].node, want[i].node) << "node " << n;
        EXPECT_DOUBLE_EQ((*scan)[i].weight, want[i].weight)
            << "node " << n;
      }
    }
  }
  // Cursor destroyed: every pin must be gone.
  EXPECT_EQ(env.pinned(), 0u);
}

TEST_P(NetworkViewConformanceTest, SpanSurvivesScansOnOtherCursors) {
  Graph g = TestGraph(7);
  ViewEnv env = MakeEnv(GetParam(), g);
  NeighborCursor main_cursor, aux_cursor;
  const NodeId main_node = 5;
  auto main_scan = env.view().Scan(main_node, main_cursor);
  ASSERT_TRUE(main_scan.ok());
  const std::vector<AdjEntry> want(main_scan->begin(), main_scan->end());
  // A nested expansion hammers the aux cursor (and, for stored views,
  // the pool) while the main span is live.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    ASSERT_TRUE(env.view().Scan(n, aux_cursor).ok());
  }
  EXPECT_TRUE(std::equal(main_scan->begin(), main_scan->end(),
                         want.begin(), want.end()));
  main_cursor.Reset();
  aux_cursor.Reset();
  EXPECT_EQ(env.pinned(), 0u);
}

TEST_P(NetworkViewConformanceTest, EarlyExitLeaksNoPins) {
  Graph g = TestGraph(7);
  ViewEnv env = MakeEnv(GetParam(), g);
  {
    NeighborCursor cursor;
    auto scan = env.view().Scan(0, cursor);
    ASSERT_TRUE(scan.ok());
    for (const AdjEntry& a : *scan) {
      if (a.node > 0) {
        break;  // early exit mid-iteration, cursor destroyed below
      }
    }
  }
  EXPECT_EQ(env.pinned(), 0u);
  {
    NeighborCursor cursor;
    ASSERT_TRUE(env.view().Scan(1, cursor).ok());
    cursor.Reset();  // explicit reset instead of destruction
    EXPECT_EQ(cursor.held_pins(), 0u);
    EXPECT_EQ(env.pinned(), 0u);
  }
}

TEST_P(NetworkViewConformanceTest, EveryQueryLeavesThePoolUnpinned) {
  Graph g = TestGraph(7);
  ViewEnv env = MakeEnv(GetParam(), g);
  std::vector<NodeId> locs;
  for (NodeId n = 0; n < g.num_nodes(); n += 7) {
    locs.push_back(n);
  }
  auto points =
      core::NodePointSet::FromLocations(g.num_nodes(), locs).ValueOrDie();
  core::EngineSources sources;
  sources.graph = &env.view();
  sources.points = &points;
  sources.pool = env.pool.get();
  auto engine = core::RknnEngine::Create(sources).ValueOrDie();
  for (core::Algorithm algo :
       {core::Algorithm::kEager, core::Algorithm::kLazy,
        core::Algorithm::kLazyEp, core::Algorithm::kBruteForce}) {
    for (int k = 1; k <= 2; ++k) {
      auto r = engine.Run(core::QuerySpec::Monochromatic(
          algo, points.NodeOf(0), k, PointId{0}));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(env.pinned(), 0u)
          << "algo=" << core::AlgorithmName(algo) << " k=" << k;
    }
  }
  // Error paths drop pins too.
  EXPECT_FALSE(engine
                   .Run(core::QuerySpec::Monochromatic(
                       core::Algorithm::kEager, g.num_nodes() + 1, 1))
                   .ok());
  EXPECT_EQ(env.pinned(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllViews, NetworkViewConformanceTest,
    ::testing::Values(ViewKind::kGraphView, ViewKind::kStoredV1,
                      ViewKind::kStoredV2Lease,
                      ViewKind::kStoredV2TinyPool,
                      ViewKind::kStoredV2Unbuffered),
    [](const auto& info) {
      switch (info.param) {
        case ViewKind::kGraphView:
          return "GraphView";
        case ViewKind::kStoredV1:
          return "StoredV1";
        case ViewKind::kStoredV2Lease:
          return "StoredV2Lease";
        case ViewKind::kStoredV2TinyPool:
          return "StoredV2TinyPool";
        default:
          return "StoredV2Unbuffered";
      }
    });

}  // namespace
}  // namespace grnn::graph
