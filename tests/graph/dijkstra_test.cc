#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/network_view.h"

namespace grnn::graph {
namespace {

Graph PaperFig3() {
  return Graph::FromEdges(7, {{0, 3, 5.0},
                              {0, 4, 3.0},
                              {0, 1, 2.0},
                              {1, 4, 2.0},
                              {1, 5, 3.0},
                              {2, 3, 4.0},
                              {2, 5, 3.0},
                              {2, 6, 5.0},
                              {4, 6, 6.0}})
      .ValueOrDie();
}

TEST(DijkstraTest, SingleSourceMatchesPaperExample) {
  Graph g = PaperFig3();
  GraphView view(&g);
  auto dist = SingleSourceDistances(view, 3).ValueOrDie();  // q at n4
  // Paper: d(q,n3)=4, d(q,n1)=5.
  EXPECT_DOUBLE_EQ(dist[3], 0.0);
  EXPECT_DOUBLE_EQ(dist[2], 4.0);
  EXPECT_DOUBLE_EQ(dist[0], 5.0);
  // d(q,n6): via n3 = 4+3 = 7.
  EXPECT_DOUBLE_EQ(dist[5], 7.0);
  // d(q,n5): via n1 = 5+3 = 8 vs via n1-n2-n5 = 5+2+2 = 9 -> 8.
  EXPECT_DOUBLE_EQ(dist[4], 8.0);
}

TEST(DijkstraTest, PointToPointEqualsFullSearch) {
  Graph g = PaperFig3();
  GraphView view(&g);
  auto dist = SingleSourceDistances(view, 0).ValueOrDie();
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    EXPECT_DOUBLE_EQ(ShortestPathDistance(view, 0, t).ValueOrDie(),
                     dist[t]);
  }
}

TEST(DijkstraTest, DisconnectedIsInfinite) {
  auto g = Graph::FromEdges(4, {{0, 1, 1.0}, {2, 3, 1.0}}).ValueOrDie();
  GraphView view(&g);
  EXPECT_EQ(ShortestPathDistance(view, 0, 3).ValueOrDie(), kInfinity);
  auto dist = SingleSourceDistances(view, 0).ValueOrDie();
  EXPECT_EQ(dist[2], kInfinity);
  EXPECT_EQ(dist[3], kInfinity);
}

TEST(DijkstraTest, OutOfRangeSource) {
  Graph g = PaperFig3();
  GraphView view(&g);
  EXPECT_FALSE(SingleSourceDistances(view, 99).ok());
  EXPECT_FALSE(ShortestPathDistance(view, 0, 99).ok());
}

TEST(DijkstraTest, ExpandByDistanceIsSortedAndComplete) {
  Graph g = PaperFig3();
  GraphView view(&g);
  auto order = ExpandByDistance(view, 3, 0).ValueOrDie();
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order[0].first, 3u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(order[i - 1].second, order[i].second);
  }
}

TEST(DijkstraTest, ExpandByDistanceHonorsLimit) {
  Graph g = PaperFig3();
  GraphView view(&g);
  auto order = ExpandByDistance(view, 3, 3).ValueOrDie();
  EXPECT_EQ(order.size(), 3u);
}

// Random graphs: distances satisfy the triangle inequality through any
// intermediate node, and symmetry d(a,b) == d(b,a).
TEST(DijkstraTest, RandomGraphMetricProperties) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const NodeId n = 30;
    std::vector<Edge> edges;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.Bernoulli(0.15)) {
          edges.push_back({u, v, rng.Uniform(0.5, 10.0)});
        }
      }
    }
    // Spanning chain keeps it connected.
    for (NodeId u = 0; u + 1 < n; ++u) {
      if (!std::any_of(edges.begin(), edges.end(), [&](const Edge& e) {
            return (e.u == u && e.v == u + 1);
          })) {
        edges.push_back({u, static_cast<NodeId>(u + 1),
                         rng.Uniform(0.5, 10.0)});
      }
    }
    auto g = Graph::FromEdges(n, edges).ValueOrDie();
    GraphView view(&g);

    std::vector<std::vector<Weight>> d(n);
    for (NodeId s = 0; s < n; ++s) {
      d[s] = SingleSourceDistances(view, s).ValueOrDie();
    }
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        EXPECT_NEAR(d[a][b], d[b][a], 1e-9);
        for (NodeId c = 0; c < n; ++c) {
          EXPECT_LE(d[a][b], d[a][c] + d[c][b] + 1e-9);
        }
      }
    }
  }
}

}  // namespace
}  // namespace grnn::graph
