#include "graph/connectivity.h"

#include <gtest/gtest.h>

namespace grnn::graph {
namespace {

TEST(ConnectivityTest, SingleComponent) {
  auto g =
      Graph::FromEdges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}})
          .ValueOrDie();
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(CountComponents(g), 1u);
  auto comp = ConnectedComponents(g);
  EXPECT_EQ(comp, (std::vector<uint32_t>{0, 0, 0, 0}));
}

TEST(ConnectivityTest, MultipleComponents) {
  auto g = Graph::FromEdges(6, {{0, 1, 1.0}, {2, 3, 1.0}}).ValueOrDie();
  EXPECT_FALSE(IsConnected(g));
  EXPECT_EQ(CountComponents(g), 4u);  // {0,1}, {2,3}, {4}, {5}
}

TEST(ConnectivityTest, LargestComponentExtracted) {
  // Component A: 0-1-2 (3 nodes); component B: 3-4 (2 nodes); isolated 5.
  auto g = Graph::FromEdges(
               6, {{0, 1, 1.0}, {1, 2, 2.0}, {3, 4, 1.0}})
               .ValueOrDie();
  std::vector<NodeId> remap;
  auto big = LargestComponent(g, &remap).ValueOrDie();
  EXPECT_EQ(big.num_nodes(), 3u);
  EXPECT_EQ(big.num_edges(), 2u);
  EXPECT_NE(remap[0], kInvalidNode);
  EXPECT_NE(remap[1], kInvalidNode);
  EXPECT_NE(remap[2], kInvalidNode);
  EXPECT_EQ(remap[3], kInvalidNode);
  EXPECT_EQ(remap[4], kInvalidNode);
  EXPECT_EQ(remap[5], kInvalidNode);
  // Weights preserved under renumbering.
  EXPECT_DOUBLE_EQ(big.EdgeWeight(remap[1], remap[2]).ValueOrDie(), 2.0);
}

TEST(ConnectivityTest, LargestComponentOfConnectedGraphIsIdentitySize) {
  auto g =
      Graph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}}).ValueOrDie();
  auto big = LargestComponent(g).ValueOrDie();
  EXPECT_EQ(big.num_nodes(), 3u);
  EXPECT_EQ(big.num_edges(), 2u);
}

TEST(ConnectivityTest, EmptyGraphRejected) {
  auto g = Graph::FromEdges(0, {}).ValueOrDie();
  EXPECT_FALSE(LargestComponent(g).ok());
}

TEST(ConnectivityTest, AllIsolatedNodes) {
  auto g = Graph::FromEdges(3, {}).ValueOrDie();
  EXPECT_EQ(CountComponents(g), 3u);
  auto big = LargestComponent(g).ValueOrDie();
  EXPECT_EQ(big.num_nodes(), 1u);
}

TEST(ConnectivityTest, NetworkViewOverloadMatchesGraphLabels) {
  auto g = Graph::FromEdges(6, {{0, 1, 1.0},
                                {1, 2, 2.0},
                                {3, 4, 1.0}})
               .ValueOrDie();
  GraphView view(&g);
  auto via_view = ConnectedComponents(view).ValueOrDie();
  EXPECT_EQ(via_view, ConnectedComponents(g));
}

}  // namespace
}  // namespace grnn::graph
