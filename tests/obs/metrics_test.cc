// obs::MetricsRegistry suite: sharded counter exactness under threads,
// concurrent-histogram merging, snapshot/collector semantics and both
// exporters — plus the multithreaded registry hammer the TSan job runs
// to prove instrument updates may race Snapshot() freely.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace grnn::obs {
namespace {

TEST(CounterTest, SingleThreadExact) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, MultithreadedSumIsExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Add();
      }
    });
  }
  for (auto& th : team) {
    th.join();
  }
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
}

TEST(ConcurrentHistogramTest, MergedSeesEveryRecord) {
  ConcurrentHistogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + i % 100);
      }
    });
  }
  for (auto& th : team) {
    th.join();
  }
  Histogram merged = h.Merged();
  EXPECT_EQ(merged.count(), kThreads * kPerThread);
  EXPECT_GT(merged.Percentile(50), 0u);
}

TEST(HistogramTest, SumTracksRecords) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(12);
  EXPECT_EQ(h.sum(), 42u);
  Histogram other;
  other.Record(8);
  h.Merge(other);
  EXPECT_EQ(h.sum(), 50u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(MetricsSnapshotTest, SetOverwritesAndLookupsWork) {
  MetricsSnapshot snap;
  snap.SetCounter("b", 1);
  snap.SetCounter("a", 2);
  snap.SetCounter("b", 3);  // overwrite, not duplicate
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");  // sorted
  EXPECT_EQ(snap.CounterValue("b"), 3u);
  EXPECT_EQ(snap.CounterValue("missing"), 0u);
  snap.SetGauge("g", -7);
  EXPECT_EQ(snap.GaugeValue("g"), -7);
  Histogram h;
  h.Record(100);
  snap.SetHistogram("lat", h);
  const HistogramSummary* s = snap.FindHistogram("lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1u);
  EXPECT_EQ(snap.FindHistogram("nope"), nullptr);
}

TEST(MetricsSnapshotTest, PrometheusExportShape) {
  MetricsSnapshot snap;
  snap.SetCounter("engine.search.nodes_expanded", 5);
  snap.SetGauge("engine.epoch.limbo", 2);
  Histogram h;
  h.Record(100);
  h.Record(200);
  snap.SetHistogram("scheduler.latency_micros", h);
  const std::string prom = snap.ExportPrometheus();
  // Dots map to underscores; counters/gauges typed; histograms as
  // quantile series with _sum/_count.
  EXPECT_NE(prom.find("engine_search_nodes_expanded 5"),
            std::string::npos);
  EXPECT_NE(prom.find("engine_epoch_limbo 2"), std::string::npos);
  EXPECT_NE(prom.find("scheduler_latency_micros_count 2"),
            std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_EQ(prom.find("engine.search"), std::string::npos);
}

TEST(MetricsSnapshotTest, JsonExportShape) {
  MetricsSnapshot snap;
  snap.SetCounter("a.b", 1);
  snap.SetGauge("c", -2);
  Histogram h;
  h.Record(7);
  snap.SetHistogram("d", h);
  const std::string json = snap.ExportJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.b\":1"), std::string::npos);
  EXPECT_NE(json.find("\"c\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, InstrumentsAreStableAndShared) {
  MetricsRegistry reg;
  Counter& c1 = reg.GetCounter("x");
  Counter& c2 = reg.GetCounter("x");
  EXPECT_EQ(&c1, &c2);
  c1.Add(3);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("x"), 3u);
}

TEST(MetricsRegistryTest, CollectorsRunAtSnapshotAndUnregister) {
  MetricsRegistry reg;
  std::atomic<int> polls{0};
  const uint64_t token = reg.RegisterCollector([&](MetricsSnapshot& s) {
    polls.fetch_add(1);
    s.SetCounter("from.collector", 9);
  });
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(polls.load(), 1);
  EXPECT_EQ(snap.CounterValue("from.collector"), 9u);
  reg.UnregisterCollector(token);
  snap = reg.Snapshot();
  EXPECT_EQ(polls.load(), 1);  // no longer polled
  EXPECT_EQ(snap.CounterValue("from.collector"), 0u);
}

TEST(MetricsRegistryTest, CollectorCanShadowInstrument) {
  MetricsRegistry reg;
  reg.GetCounter("v").Add(1);
  reg.RegisterCollector(
      [](MetricsSnapshot& s) { s.SetCounter("v", 100); });
  EXPECT_EQ(reg.Snapshot().CounterValue("v"), 100u);
}

// The TSan target: updates race registration, collectors and Snapshot.
TEST(MetricsRegistryTest, ConcurrentHammer) {
  MetricsRegistry reg;
  Counter& hot = reg.GetCounter("hot");
  std::atomic<bool> stop{false};
  std::vector<std::thread> team;
  // Writers on a shared counter + private ones they register live.
  for (int t = 0; t < 4; ++t) {
    team.emplace_back([&, t] {
      Counter& mine =
          reg.GetCounter("writer." + std::to_string(t));
      ConcurrentHistogram& h =
          reg.GetHistogram("lat." + std::to_string(t));
      for (int i = 0; i < 20000; ++i) {
        hot.Add();
        mine.Add(2);
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  // Snapshotters racing the writers.
  for (int t = 0; t < 2; ++t) {
    team.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        MetricsSnapshot snap = reg.Snapshot();
        // Any observed value is <= the final exact total.
        EXPECT_LE(snap.CounterValue("hot"), 80000u);
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    team[static_cast<size_t>(t)].join();
  }
  stop.store(true);
  team[4].join();
  team[5].join();
  MetricsSnapshot final_snap = reg.Snapshot();
  EXPECT_EQ(final_snap.CounterValue("hot"), 80000u);
  EXPECT_EQ(final_snap.CounterValue("writer.0"), 40000u);
  const HistogramSummary* s = final_snap.FindHistogram("lat.3");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 20000u);
}

}  // namespace
}  // namespace grnn::obs
