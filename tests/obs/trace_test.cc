// obs trace suite: span-tree structure, RAII closure on error paths,
// disarmed no-op behavior, the span-arena cap, note accumulation, the
// thread-local arm/restore discipline and the bounded slow-query ring.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "common/result.h"

namespace grnn::obs {
namespace {

TEST(TraceContextTest, PreorderTreeWithParentLinks) {
  TraceContext ctx;
  ctx.Begin();
  const int32_t root = ctx.Open("query");
  const int32_t child = ctx.Open("hub.sweep");
  ctx.Close(child);
  const int32_t sibling = ctx.Open("hub.verify");
  const int32_t grandchild = ctx.Open("page.miss");
  ctx.Close(grandchild);
  ctx.Close(sibling);
  ctx.Close(root);
  ASSERT_TRUE(ctx.AllClosed());
  const auto& spans = ctx.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_STREQ(spans[0].name, "query");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, root);
  EXPECT_EQ(spans[3].parent, sibling);
  // Closed spans carry a duration; opens are preorder by start time.
  EXPECT_GE(spans[3].start_nanos, spans[2].start_nanos);
}

TEST(TraceContextTest, BeginResetsPriorTrace) {
  TraceContext ctx;
  ctx.Begin();
  ctx.Close(ctx.Open("a"));
  ASSERT_EQ(ctx.spans().size(), 1u);
  ctx.Begin();
  EXPECT_TRUE(ctx.spans().empty());
  EXPECT_EQ(ctx.dropped_spans(), 0u);
}

TEST(TraceContextTest, NotesAccumulateByKey) {
  TraceContext ctx;
  ctx.Begin();
  const int32_t s = ctx.Open("label.scan");
  ctx.Note("entries", 3);
  ctx.Note("entries", 4);
  ctx.NoteOn(s, "pins", 1);
  ctx.Close(s);
  const auto& notes = ctx.spans()[0].notes;
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_STREQ(notes[0].first, "entries");
  EXPECT_EQ(notes[0].second, 7u);
  EXPECT_EQ(notes[1].second, 1u);
}

TEST(TraceContextTest, NoteWithoutOpenSpanIsNoOp) {
  TraceContext ctx;
  ctx.Begin();
  ctx.Note("ignored", 1);  // nothing open: must not crash or record
  EXPECT_TRUE(ctx.spans().empty());
}

TEST(TraceContextTest, ArenaCapCountsDroppedSpans) {
  TraceContext ctx;
  ctx.Begin();
  std::vector<int32_t> open;
  for (size_t i = 0; i < TraceContext::kMaxSpans + 10; ++i) {
    open.push_back(ctx.Open("deep"));
  }
  EXPECT_EQ(ctx.spans().size(), TraceContext::kMaxSpans);
  EXPECT_EQ(ctx.dropped_spans(), 10u);
  for (auto it = open.rbegin(); it != open.rend(); ++it) {
    ctx.Close(*it);  // Close(-1) for the dropped ones is a no-op
  }
  EXPECT_TRUE(ctx.AllClosed());
}

// ScopedSpan must close the tree on early error returns, mirroring the
// workspace's ReleaseLeases discipline.
Status FailsMidSpan(TraceContext* ctx) {
  ScopedSpan outer(ctx, "query");
  ScopedSpan inner(ctx, "hub.sweep");
  return Status::Internal("label page corrupt");
}

TEST(ScopedSpanTest, ClosesOnErrorPath) {
  TraceContext ctx;
  ctx.Begin();
  EXPECT_FALSE(FailsMidSpan(&ctx).ok());
  EXPECT_TRUE(ctx.AllClosed());
  ASSERT_EQ(ctx.spans().size(), 2u);
  EXPECT_GT(ctx.spans()[1].duration_nanos, 0u);
}

TEST(ScopedSpanTest, NullContextIsDisarmedNoOp) {
  ScopedSpan span(nullptr, "anything");
  EXPECT_FALSE(span.armed());
  span.Note("k", 1);  // must be a no-op, not a crash
}

TEST(TraceArmTest, PublishesAndRestoresThreadLocal) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  TraceContext outer_ctx;
  outer_ctx.Begin();
  {
    TraceArm outer(&outer_ctx);
    EXPECT_EQ(CurrentTrace(), &outer_ctx);
    TraceContext inner_ctx;
    inner_ctx.Begin();
    {
      TraceArm inner(&inner_ctx);
      EXPECT_EQ(CurrentTrace(), &inner_ctx);
    }
    EXPECT_EQ(CurrentTrace(), &outer_ctx);
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
}

TEST(SlowQueryLogTest, RingBoundsAndDrain) {
  SlowQueryLog log;
  for (int i = 0; i < 5; ++i) {
    SlowQuery q;
    q.label = "q" + std::to_string(i);
    log.Push(std::move(q), /*capacity=*/3);
  }
  EXPECT_EQ(log.dropped(), 2u);
  std::vector<SlowQuery> drained = log.Drain();
  ASSERT_EQ(drained.size(), 3u);
  // Oldest dropped: survivors are the most recent, oldest first.
  EXPECT_EQ(drained.front().label, "q2");
  EXPECT_EQ(drained.back().label, "q4");
  EXPECT_TRUE(log.Drain().empty());
}

}  // namespace
}  // namespace grnn::obs
