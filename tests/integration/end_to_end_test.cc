// Integration: the full stack (generators -> paged storage -> buffer pool
// -> algorithms) must agree with the in-memory path, charge plausible
// I/O, and survive adverse conditions (tiny pools, pool exhaustion).

#include <gtest/gtest.h>

#include "bench_util.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "gen/brite.h"
#include "gen/points.h"
#include "gen/road_network.h"
#include "graph/connectivity.h"
#include "graph/network_view.h"

namespace grnn {
namespace {

std::vector<PointId> Ids(const core::RknnResult& r) {
  std::vector<PointId> ids;
  for (const auto& m : r.results) {
    ids.push_back(m.point);
  }
  return ids;
}

TEST(EndToEndTest, StoredAndInMemoryAgreeOnRoadNetwork) {
  gen::RoadConfig cfg;
  cfg.num_nodes = 3000;
  auto net = gen::GenerateRoadNetwork(cfg).ValueOrDie();
  Rng rng(5);
  auto points =
      gen::PlaceNodePoints(net.g.num_nodes(), 0.02, rng).ValueOrDie();
  auto queries = gen::SampleQueryPoints(points, 10, rng);

  auto env =
      bench::BuildStoredRestricted(net.g, points, /*K=*/3).ValueOrDie();
  graph::GraphView mem_view(&net.g);
  core::MemoryKnnStore mem_store(net.g.num_nodes(), 3);
  ASSERT_TRUE(core::BuildAllNn(mem_view, points, &mem_store).ok());

  core::EngineSources mem_src;
  mem_src.graph = &mem_view;
  mem_src.points = &points;
  mem_src.knn = &mem_store;
  auto mem_engine = core::RknnEngine::Create(mem_src).ValueOrDie();
  auto stored_engine =
      bench::MakeRestrictedEngine(env, points).ValueOrDie();

  for (PointId qp : queries) {
    core::RknnOptions opts;
    opts.k = 2;
    opts.exclude_point = qp;
    std::vector<NodeId> q{points.NodeOf(qp)};
    auto truth = core::BruteForceRknn(mem_view, points, q, opts)
                     .ValueOrDie();
    for (auto algo : core::kAllAlgorithms) {
      auto spec = core::QuerySpec::Monochromatic(algo, q[0], opts.k, qp);
      auto mem = mem_engine.Run(spec).ValueOrDie();
      auto stored = stored_engine.Run(spec).ValueOrDie();
      EXPECT_EQ(Ids(mem), Ids(truth));
      EXPECT_EQ(Ids(stored), Ids(truth));
    }
  }
  // Disk-backed runs must have charged I/O.
  EXPECT_GT(env.pool->stats().logical_reads, 0u);
  EXPECT_GT(env.pool->stats().physical_reads, 0u);

  // Reachability through the stored view (the NetworkView overload of
  // ConnectedComponents) agrees with the in-memory labels and leaves no
  // pins behind.
  auto stored_comp = graph::ConnectedComponents(*env.view).ValueOrDie();
  EXPECT_EQ(stored_comp, graph::ConnectedComponents(net.g));
  EXPECT_EQ(env.pool->num_pinned(), 0u);
}

TEST(EndToEndTest, StoredUnrestrictedAgreesWithMemory) {
  gen::RoadConfig cfg;
  cfg.num_nodes = 2000;
  auto net = gen::GenerateRoadNetwork(cfg).ValueOrDie();
  Rng rng(7);
  auto points = gen::PlaceEdgePoints(net.g, 0.02, rng).ValueOrDie();
  auto queries = gen::SampleEdgeQueryPoints(points, 8, rng);

  auto env =
      bench::BuildStoredUnrestricted(net.g, points, /*K=*/2).ValueOrDie();
  graph::GraphView mem_view(&net.g);

  core::EngineSources mem_src;
  mem_src.graph = &mem_view;
  mem_src.edge_points = &points;  // memory reader is the engine default
  auto mem_engine = core::RknnEngine::Create(mem_src).ValueOrDie();
  auto stored_engine =
      bench::MakeUnrestrictedEngine(env, points).ValueOrDie();

  for (PointId qp : queries) {
    core::UnrestrictedQuery q;
    q.position = points.PositionOf(qp);
    core::RknnOptions opts;
    opts.exclude_point = qp;
    auto truth =
        core::UnrestrictedBruteForceRknn(mem_view, points, q, opts)
            .ValueOrDie();
    auto eager_spec = core::QuerySpec::Unrestricted(
        core::Algorithm::kEager, q.position, opts.k, qp);
    auto lazy_spec = core::QuerySpec::Unrestricted(
        core::Algorithm::kLazy, q.position, opts.k, qp);
    auto mem = mem_engine.Run(eager_spec).ValueOrDie();
    auto stored = stored_engine.Run(eager_spec).ValueOrDie();
    auto stored_lazy = stored_engine.Run(lazy_spec).ValueOrDie();
    EXPECT_EQ(Ids(mem), Ids(truth));
    EXPECT_EQ(Ids(stored), Ids(truth));
    EXPECT_EQ(Ids(stored_lazy), Ids(truth));
  }
  EXPECT_GT(env.pool->stats().physical_reads, 0u);
}

TEST(EndToEndTest, TinyPoolStillAnswersCorrectly) {
  // Failure-ish injection: a 2-page pool forces constant eviction; the
  // algorithms must still be exact (just slow).
  gen::BriteConfig cfg;
  cfg.num_nodes = 1500;
  cfg.unit_weights = false;
  auto g = gen::GenerateBrite(cfg).ValueOrDie();
  Rng rng(11);
  auto points =
      gen::PlaceNodePoints(g.num_nodes(), 0.02, rng).ValueOrDie();
  auto env = bench::BuildStoredRestricted(g, points, /*K=*/0,
                                          /*pool_pages=*/2)
                 .ValueOrDie();
  graph::GraphView mem_view(&g);
  auto stored_engine =
      bench::MakeRestrictedEngine(env, points).ValueOrDie();
  auto qp = gen::SampleQueryPoints(points, 4, rng);
  for (PointId p : qp) {
    core::RknnOptions opts;
    opts.exclude_point = p;
    std::vector<NodeId> q{points.NodeOf(p)};
    auto truth =
        core::BruteForceRknn(mem_view, points, q, opts).ValueOrDie();
    auto stored = stored_engine
                      .Run(core::QuerySpec::Monochromatic(
                          core::Algorithm::kEager, q[0], opts.k, p))
                      .ValueOrDie();
    EXPECT_EQ(Ids(stored), Ids(truth));
  }
  EXPECT_GT(env.pool->stats().evictions, 0u);
}

TEST(EndToEndTest, ZeroCapacityPoolWorks) {
  // Fig 21's leftmost configuration: no caching at all.
  gen::RoadConfig cfg;
  cfg.num_nodes = 1000;
  auto net = gen::GenerateRoadNetwork(cfg).ValueOrDie();
  Rng rng(13);
  auto points =
      gen::PlaceNodePoints(net.g.num_nodes(), 0.02, rng).ValueOrDie();
  auto env = bench::BuildStoredRestricted(net.g, points, /*K=*/0,
                                          /*pool_pages=*/0)
                 .ValueOrDie();
  graph::GraphView mem_view(&net.g);
  auto stored_engine =
      bench::MakeRestrictedEngine(env, points).ValueOrDie();
  auto qp = gen::SampleQueryPoints(points, 3, rng);
  for (PointId p : qp) {
    core::RknnOptions opts;
    opts.exclude_point = p;
    std::vector<NodeId> q{points.NodeOf(p)};
    auto truth =
        core::BruteForceRknn(mem_view, points, q, opts).ValueOrDie();
    auto stored = stored_engine
                      .Run(core::QuerySpec::Monochromatic(
                          core::Algorithm::kLazy, q[0], opts.k, p))
                      .ValueOrDie();
    EXPECT_EQ(Ids(stored), Ids(truth));
  }
  // Every logical read faulted.
  EXPECT_EQ(env.pool->stats().logical_reads,
            env.pool->stats().physical_reads);
}

TEST(EndToEndTest, FileBackedDiskManagerEndToEnd) {
  // The same pipeline over a real file on disk.
  std::string path = testing::TempDir() + "/grnn_e2e.pages";
  std::remove(path.c_str());
  auto disk = storage::FileDiskManager::Open(path).ValueOrDie();

  gen::RoadConfig cfg;
  cfg.num_nodes = 800;
  auto net = gen::GenerateRoadNetwork(cfg).ValueOrDie();
  auto file = storage::GraphFile::Build(net.g, &disk, {}).ValueOrDie();
  storage::BufferPool pool(&disk, 32);
  storage::StoredGraph view(&file, &pool);

  Rng rng(17);
  auto points =
      gen::PlaceNodePoints(net.g.num_nodes(), 0.02, rng).ValueOrDie();
  graph::GraphView mem_view(&net.g);
  core::EngineSources stored_src;
  stored_src.graph = &view;
  stored_src.points = &points;
  stored_src.pool = &pool;
  auto stored_engine = core::RknnEngine::Create(stored_src).ValueOrDie();
  auto qp = gen::SampleQueryPoints(points, 3, rng);
  for (PointId p : qp) {
    core::RknnOptions opts;
    opts.exclude_point = p;
    std::vector<NodeId> q{points.NodeOf(p)};
    auto truth =
        core::BruteForceRknn(mem_view, points, q, opts).ValueOrDie();
    auto stored = stored_engine
                      .Run(core::QuerySpec::Monochromatic(
                          core::Algorithm::kEager, q[0], opts.k, p))
                      .ValueOrDie();
    EXPECT_EQ(Ids(stored), Ids(truth));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace grnn
