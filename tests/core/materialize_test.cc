// All-NN construction (Fig 8), incremental maintenance (Figs 9-11) and
// eager-M, tested on the paper fixture (hand-computed lists) and by
// differential comparison against from-scratch rebuilds.

#include "core/materialize.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/workspace.h"
#include "graph/dijkstra.h"
#include "graph/network_view.h"
#include "test_fixtures.h"

namespace grnn::core {
namespace {

using testfix::PaperExample;
using testfix::RandomConnectedGraph;
using testfix::RandomPoints;

std::vector<NnEntry> ReadList(KnnStore& store, NodeId n) {
  std::vector<NnEntry> out;
  EXPECT_TRUE(store.Read(n, &out).ok());
  return out;
}

TEST(AllNnTest, PaperFixtureK1Lists) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  MemoryKnnStore store(f.g.num_nodes(), 1);
  ASSERT_TRUE(BuildAllNn(view, f.points, &store).ok());

  // Hand-computed nearest points (p0@n6=5, p1@n5=4, p2@n7=6).
  struct Want {
    NodeId node;
    PointId point;
    Weight dist;
  };
  const Want wants[] = {{0, 1, 3}, {1, 0, 4}, {2, 0, 3}, {3, 0, 7},
                        {4, 1, 0}, {5, 0, 0}, {6, 2, 0}};
  for (const Want& w : wants) {
    auto list = ReadList(store, w.node);
    ASSERT_EQ(list.size(), 1u) << "node " << w.node;
    EXPECT_EQ(list[0].point, w.point) << "node " << w.node;
    EXPECT_DOUBLE_EQ(list[0].dist, w.dist) << "node " << w.node;
  }
}

TEST(AllNnTest, PaperFixtureK2Lists) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  MemoryKnnStore store(f.g.num_nodes(), 2);
  ASSERT_TRUE(BuildAllNn(view, f.points, &store).ok());

  auto l0 = ReadList(store, 0);
  ASSERT_EQ(l0.size(), 2u);
  EXPECT_EQ(l0[0], (NnEntry{1, 3.0}));
  EXPECT_EQ(l0[1], (NnEntry{0, 12.0}));

  auto l4 = ReadList(store, 4);
  ASSERT_EQ(l4.size(), 2u);
  EXPECT_EQ(l4[0], (NnEntry{1, 0.0}));
  EXPECT_EQ(l4[1], (NnEntry{0, 9.0}));

  auto l5 = ReadList(store, 5);
  ASSERT_EQ(l5.size(), 2u);
  EXPECT_EQ(l5[0], (NnEntry{0, 0.0}));
  EXPECT_EQ(l5[1], (NnEntry{2, 8.0}));
}

TEST(AllNnTest, ListsAscendingAndCapped) {
  Rng rng(5);
  auto g = RandomConnectedGraph(100, 1.5, rng);
  auto points = RandomPoints(g.num_nodes(), 20, rng);
  graph::GraphView view(&g);
  MemoryKnnStore store(g.num_nodes(), 4);
  ASSERT_TRUE(BuildAllNn(view, points, &store).ok());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    auto list = ReadList(store, n);
    EXPECT_LE(list.size(), 4u);
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_LE(list[i - 1].dist, list[i].dist);
    }
  }
}

TEST(AllNnTest, FewerPointsThanKGivesShortLists) {
  auto f = PaperExample();  // 3 points
  graph::GraphView view(&f.g);
  MemoryKnnStore store(f.g.num_nodes(), 5);
  ASSERT_TRUE(BuildAllNn(view, f.points, &store).ok());
  for (NodeId n = 0; n < f.g.num_nodes(); ++n) {
    EXPECT_EQ(ReadList(store, n).size(), 3u);
  }
}

TEST(AllNnTest, MatchesPerNodeKnnQueries) {
  // Differential: all-NN lists == independent per-node kNN computations.
  Rng rng(11);
  auto g = RandomConnectedGraph(60, 1.0, rng);
  auto points = RandomPoints(g.num_nodes(), 12, rng);
  graph::GraphView view(&g);
  const uint32_t K = 3;
  MemoryKnnStore store(g.num_nodes(), K);
  ASSERT_TRUE(BuildAllNn(view, points, &store).ok());

  // Oracle: distances from every point.
  std::vector<std::vector<Weight>> pdist;
  std::vector<PointId> live = points.LivePoints();
  for (PointId p : live) {
    pdist.push_back(graph::SingleSourceDistances(view, points.NodeOf(p))
                        .ValueOrDie());
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    std::vector<std::pair<Weight, PointId>> want;
    for (size_t i = 0; i < live.size(); ++i) {
      want.push_back({pdist[i][n], live[i]});
    }
    std::sort(want.begin(), want.end());
    auto list = ReadList(store, n);
    ASSERT_EQ(list.size(), std::min<size_t>(K, want.size()));
    for (size_t i = 0; i < list.size(); ++i) {
      EXPECT_NEAR(list[i].dist, want[i].first, 1e-9) << "node " << n;
    }
  }
}

TEST(MaintenanceTest, PaperFixtureInsertion) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  MemoryKnnStore store(f.g.num_nodes(), 1);
  ASSERT_TRUE(BuildAllNn(view, f.points, &store).ok());

  // Insert a new point on the (empty) query node n4 (id 3).
  auto id = f.points.AddPoint(3);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(MaterializedInsert(view, f.points, 3, &store).ok());

  EXPECT_EQ(ReadList(store, 3)[0], (NnEntry{*id, 0.0}));
  // Unchanged neighbors (paper's example: d(n3,p4) >= existing NN dist).
  EXPECT_EQ(ReadList(store, 2)[0], (NnEntry{0, 3.0}));
  EXPECT_EQ(ReadList(store, 0)[0], (NnEntry{1, 3.0}));
}

TEST(MaintenanceTest, PaperFixtureDeletion) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  MemoryKnnStore store(f.g.num_nodes(), 1);
  ASSERT_TRUE(BuildAllNn(view, f.points, &store).ok());

  // Delete p0 (on n6 = node 5): affected nodes are 1, 2, 3, 5.
  const NodeId host = f.points.NodeOf(0);
  ASSERT_TRUE(f.points.RemovePoint(0).ok());
  UpdateStats stats;
  ASSERT_TRUE(MaterializedDelete(view, f.points, 0, host, &store, &stats)
                  .ok());
  EXPECT_GT(stats.border_nodes, 0u);

  EXPECT_EQ(ReadList(store, 1)[0], (NnEntry{1, 5.0}));
  EXPECT_EQ(ReadList(store, 2)[0], (NnEntry{2, 5.0}));
  EXPECT_EQ(ReadList(store, 3)[0], (NnEntry{1, 8.0}));
  EXPECT_EQ(ReadList(store, 5)[0], (NnEntry{2, 8.0}));
  // Unaffected nodes keep their lists.
  EXPECT_EQ(ReadList(store, 0)[0], (NnEntry{1, 3.0}));
  EXPECT_EQ(ReadList(store, 4)[0], (NnEntry{1, 0.0}));
  EXPECT_EQ(ReadList(store, 6)[0], (NnEntry{2, 0.0}));
}

// Differential maintenance: after a random sequence of inserts/deletes the
// incrementally maintained store equals a from-scratch rebuild.
class MaintenanceSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MaintenanceSweep, IncrementalEqualsRebuild) {
  const auto [K, num_ops, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 104729 + 7);
  auto g = RandomConnectedGraph(70, 1.2, rng);
  auto points = RandomPoints(g.num_nodes(), 14, rng);
  graph::GraphView view(&g);

  MemoryKnnStore store(g.num_nodes(), static_cast<uint32_t>(K));
  ASSERT_TRUE(BuildAllNn(view, points, &store).ok());

  for (int op = 0; op < num_ops; ++op) {
    if (rng.Bernoulli(0.5) && points.num_points() > 2) {
      auto live = points.LivePoints();
      PointId victim = live[rng.UniformInt(live.size())];
      NodeId host = points.NodeOf(victim);
      ASSERT_TRUE(points.RemovePoint(victim).ok());
      ASSERT_TRUE(
          MaterializedDelete(view, points, victim, host, &store).ok());
    } else {
      NodeId n;
      do {
        n = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      } while (points.Contains(n));
      ASSERT_TRUE(points.AddPoint(n).ok());
      ASSERT_TRUE(MaterializedInsert(view, points, n, &store).ok());
    }
  }

  MemoryKnnStore fresh(g.num_nodes(), static_cast<uint32_t>(K));
  ASSERT_TRUE(BuildAllNn(view, points, &fresh).ok());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    auto got = ReadList(store, n);
    auto want = ReadList(fresh, n);
    ASSERT_EQ(got.size(), want.size()) << "node " << n;
    for (size_t i = 0; i < got.size(); ++i) {
      // Points at tied distances may be ordered differently; compare
      // distances always and ids when distances are distinct.
      EXPECT_NEAR(got[i].dist, want[i].dist, 1e-9) << "node " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaintenanceSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(6, 14),
                                            ::testing::Values(1, 2, 3)));

TEST(MaterializeErrorsTest, InvalidArguments) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  MemoryKnnStore store(f.g.num_nodes(), 1);
  EXPECT_FALSE(BuildAllNn(view, f.points, nullptr).ok());
  MemoryKnnStore wrong_size(3, 1);
  EXPECT_FALSE(BuildAllNn(view, f.points, &wrong_size).ok());

  // Insert requires the point to already exist on the node.
  EXPECT_TRUE(
      MaterializedInsert(view, f.points, 3, &store).code() ==
      StatusCode::kFailedPrecondition);
  // Delete requires the point to be gone from the set.
  ASSERT_TRUE(BuildAllNn(view, f.points, &store).ok());
  EXPECT_TRUE(MaterializedDelete(view, f.points, 0, f.points.NodeOf(0),
                                 &store)
                  .code() == StatusCode::kFailedPrecondition);
}

TEST(EagerMTest, RejectsKBeyondMaterializedK) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  MemoryKnnStore store(f.g.num_nodes(), 2);
  ASSERT_TRUE(BuildAllNn(view, f.points, &store).ok());
  RknnOptions opts;
  opts.k = 3;
  SearchWorkspace ws;
  auto r = EagerMRknn(view, f.points, &store, std::vector<NodeId>{3}, opts,
                      ws);
  EXPECT_FALSE(r.ok());
}

TEST(EagerMTest, ShortcutAcceptsRecorded) {
  // With K = k+1 the fixture's RNN query should accept at least one
  // candidate through the materialization shortcut (no verification).
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  MemoryKnnStore store(f.g.num_nodes(), 2);
  ASSERT_TRUE(BuildAllNn(view, f.points, &store).ok());
  SearchWorkspace ws;
  auto r = EagerMRknn(view, f.points, &store, std::vector<NodeId>{3},
                      RknnOptions{}, ws)
               .ValueOrDie();
  EXPECT_EQ(testfix::Ids(r), (std::vector<PointId>{0, 1}));
  EXPECT_GT(r.stats.shortcut_accepts, 0u);
  EXPECT_EQ(r.stats.range_nn_calls, 0u);  // no range-NN expansions at all
}

TEST(FileKnnStoreTest, BehavesLikeMemoryStore) {
  Rng rng(21);
  auto g = RandomConnectedGraph(50, 1.0, rng);
  auto points = RandomPoints(g.num_nodes(), 10, rng);
  graph::GraphView view(&g);

  MemoryKnnStore mem(g.num_nodes(), 2);
  ASSERT_TRUE(BuildAllNn(view, points, &mem).ok());

  storage::MemoryDiskManager disk(4096);
  auto file = storage::KnnFile::Create(&disk, g.num_nodes(), 2)
                  .ValueOrDie();
  storage::BufferPool pool(&disk, 16);
  FileKnnStore fks(&file, &pool);
  ASSERT_TRUE(BuildAllNn(view, points, &fks).ok());

  std::vector<NnEntry> a, b;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    ASSERT_TRUE(mem.Read(n, &a).ok());
    ASSERT_TRUE(fks.Read(n, &b).ok());
    EXPECT_EQ(a, b) << "node " << n;
  }
  EXPECT_GT(pool.stats().logical_reads, 0u);
}

}  // namespace
}  // namespace grnn::core
