// Unrestricted-network RkNN (paper Section 5.2): points on edges, queries
// as positions or routes; eager / lazy / lazy-EP / eager-M vs the
// independent brute-force oracle.

#include "core/unrestricted.h"

#include <gtest/gtest.h>

#include "core/workspace.h"
#include "graph/network_view.h"
#include "test_fixtures.h"

namespace grnn::core {
namespace {

using testfix::RandomConnectedGraph;

std::vector<PointId> Ids(const RknnResult& r) {
  std::vector<PointId> ids;
  for (const PointMatch& m : r.results) {
    ids.push_back(m.point);
  }
  return ids;
}

// A small fixture in the spirit of Fig 14: a ring with chords, points at
// various positions on edges.
//
//        0 --4-- 1
//        |       |
//        6       3
//        |       |
//        3 --5-- 2
//        |       |
//        2       7
//        |       |
//        4 --8-- 5
struct UnrestrictedFixture {
  graph::Graph g;
  EdgePointSet points;
  UnrestrictedFixture(graph::Graph gg, EdgePointSet pp)
      : g(std::move(gg)), points(std::move(pp)) {}
};

UnrestrictedFixture MakeFixture() {
  auto g = graph::Graph::FromEdges(6, {{0, 1, 4.0},
                                       {1, 2, 3.0},
                                       {2, 3, 5.0},
                                       {0, 3, 6.0},
                                       {3, 4, 2.0},
                                       {2, 5, 7.0},
                                       {4, 5, 8.0}})
               .ValueOrDie();
  // p0 at 1.0 along edge (0,1); p1 at 2.0 along (2,3); p2 at 6.0 along
  // (4,5).
  auto pts = EdgePointSet::Create(g, {{0, 1, 1.0},
                                      {2, 3, 2.0},
                                      {4, 5, 6.0}})
                 .ValueOrDie();
  return UnrestrictedFixture(std::move(g), std::move(pts));
}

TEST(EdgePointSetTest, CreateValidatesPositions) {
  auto g = graph::Graph::FromEdges(3, {{0, 1, 2.0}}).ValueOrDie();
  EXPECT_TRUE(EdgePointSet::Create(g, {{0, 1, 1.0}}).ok());
  // Out of range pos.
  EXPECT_FALSE(EdgePointSet::Create(g, {{0, 1, 3.0}}).ok());
  EXPECT_FALSE(EdgePointSet::Create(g, {{0, 1, -0.5}}).ok());
  // Missing edge.
  EXPECT_FALSE(EdgePointSet::Create(g, {{0, 2, 0.5}}).ok());
  // Degenerate.
  EXPECT_FALSE(EdgePointSet::Create(g, {{1, 1, 0.0}}).ok());
}

TEST(EdgePointSetTest, CanonicalizesOrientation) {
  auto g = graph::Graph::FromEdges(3, {{0, 1, 2.0}}).ValueOrDie();
  // Position given from node 1's perspective: 0.5 from node 1.
  auto pts = EdgePointSet::Create(g, {{1, 0, 0.5}}).ValueOrDie();
  const EdgePosition& p = pts.PositionOf(0);
  EXPECT_EQ(p.u, 0u);
  EXPECT_EQ(p.v, 1u);
  EXPECT_DOUBLE_EQ(p.pos, 1.5);  // 2.0 - 0.5 from node 0
}

TEST(EdgePointSetTest, PointsOnEdgeSortedAndOrientationFree) {
  auto f = MakeFixture();
  const auto& recs = f.points.PointsOnEdge(3, 2);  // reversed lookup
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].point, 1u);
  EXPECT_TRUE(f.points.EdgeHasPoints(3, 2));
  EXPECT_FALSE(f.points.EdgeHasPoints(0, 3));
}

TEST(EdgePointSetTest, AddRemove) {
  auto f = MakeFixture();
  auto id = f.points.AddPoint(f.g, {0, 3, 1.5});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(f.points.EdgeHasPoints(0, 3));
  EXPECT_EQ(f.points.num_points(), 4u);
  ASSERT_TRUE(f.points.RemovePoint(*id).ok());
  EXPECT_FALSE(f.points.EdgeHasPoints(0, 3));
  EXPECT_FALSE(f.points.IsLive(*id));
  EXPECT_TRUE(f.points.RemovePoint(*id).IsNotFound());
}

TEST(EdgePointSetTest, ToEdgeGroupsRoundTripsThroughPointFile) {
  auto f = MakeFixture();
  storage::MemoryDiskManager disk(256);
  auto file =
      storage::PointFile::Build(&disk, f.points.ToEdgeGroups())
          .ValueOrDie();
  EXPECT_EQ(file.num_points(), f.points.num_points());
  storage::BufferPool pool(&disk, 8);
  StoredEdgePointReader stored(&file, &pool);
  MemoryEdgePointReader mem(&f.points);
  std::vector<EdgePointRecord> a, b;
  for (const Edge& e : f.g.CollectEdges()) {
    EXPECT_EQ(stored.Has(e.u, e.v), mem.Has(e.u, e.v));
    ASSERT_TRUE(stored.Read(e.u, e.v, &a).ok());
    ASSERT_TRUE(mem.Read(e.u, e.v, &b).ok());
    EXPECT_EQ(a, b);
  }
}

// Hand-checked scenario: query on edge (0,1) at pos 3.0 (1 from node 1).
// d(q,p0) = |3-1| = 2 (same edge, direct).
TEST(UnrestrictedAlgorithmsTest, SameEdgeDirectDistance) {
  auto f = MakeFixture();
  graph::GraphView view(&f.g);
  MemoryEdgePointReader reader(&f.points);
  UnrestrictedQuery q;
  q.position = {0, 1, 3.0};
  auto r = UnrestrictedBruteForceRknn(view, f.points, q).ValueOrDie();
  ASSERT_FALSE(r.results.empty());
  EXPECT_EQ(r.results[0].point, 0u);
  EXPECT_DOUBLE_EQ(r.results[0].dist, 2.0);
  SearchWorkspace ws;
  auto e = UnrestrictedEagerRknn(view, f.points, reader, q, RknnOptions{},
                                 ws)
               .ValueOrDie();
  EXPECT_EQ(Ids(e), Ids(r));
}

TEST(UnrestrictedAlgorithmsTest, AllAlgorithmsAgreeOnFixture) {
  auto f = MakeFixture();
  graph::GraphView view(&f.g);
  MemoryEdgePointReader reader(&f.points);
  MemoryKnnStore store(f.g.num_nodes(), 3);
  ASSERT_TRUE(UnrestrictedBuildAllNn(view, f.points, &store).ok());
  SearchWorkspace ws;

  for (int k = 1; k <= 3; ++k) {
    for (const Edge& e : f.g.CollectEdges()) {
      RknnOptions opts;
      opts.k = k;
      UnrestrictedQuery q;
      q.position = {e.u, e.v, e.w / 3.0};
      auto truth = UnrestrictedBruteForceRknn(view, f.points, q, opts)
                       .ValueOrDie();
      auto eager =
          UnrestrictedEagerRknn(view, f.points, reader, q, opts, ws)
              .ValueOrDie();
      auto lazy =
          UnrestrictedLazyRknn(view, f.points, reader, q, opts, ws)
              .ValueOrDie();
      auto lep =
          UnrestrictedLazyEpRknn(view, f.points, reader, q, opts, ws)
              .ValueOrDie();
      auto em = UnrestrictedEagerMRknn(view, f.points, reader, &store, q,
                                       opts, ws)
                    .ValueOrDie();
      EXPECT_EQ(Ids(eager), Ids(truth)) << "k=" << k;
      EXPECT_EQ(Ids(lazy), Ids(truth)) << "k=" << k;
      EXPECT_EQ(Ids(lep), Ids(truth)) << "k=" << k;
      EXPECT_EQ(Ids(em), Ids(truth)) << "k=" << k;
    }
  }
}

// Random sweeps: points on random edges at random positions, queries at
// data points (paper workload) and at random positions.
class UnrestrictedSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(UnrestrictedSweep, AllAlgorithmsMatchBruteForce) {
  const auto [k, seed, stored_reader] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 6151 + 3);
  auto g = RandomConnectedGraph(60, 1.0, rng);
  auto edges = g.CollectEdges();

  // ~12 points on distinct random edges (multiple points per edge are
  // exercised separately below).
  std::vector<EdgePosition> pos;
  auto chosen = rng.SampleWithoutReplacement(edges.size(), 12);
  for (uint64_t ei : chosen) {
    const Edge& e = edges[ei];
    pos.push_back({e.u, e.v, rng.Uniform(0.0, e.w)});
  }
  auto points = EdgePointSet::Create(g, pos).ValueOrDie();
  graph::GraphView view(&g);

  storage::MemoryDiskManager disk(512);
  auto pf = storage::PointFile::Build(&disk, points.ToEdgeGroups())
                .ValueOrDie();
  storage::BufferPool pool(&disk, 16);
  StoredEdgePointReader stored(&pf, &pool);
  MemoryEdgePointReader mem(&points);
  const EdgePointReader& reader =
      stored_reader ? static_cast<const EdgePointReader&>(stored)
                    : static_cast<const EdgePointReader&>(mem);

  MemoryKnnStore store(g.num_nodes(), static_cast<uint32_t>(k) + 1);
  ASSERT_TRUE(UnrestrictedBuildAllNn(view, points, &store).ok());
  SearchWorkspace ws;

  for (int trial = 0; trial < 6; ++trial) {
    RknnOptions opts;
    opts.k = k;
    UnrestrictedQuery q;
    if (trial % 2 == 0) {
      // Query at a data point, excluding it (paper workloads).
      auto live = points.LivePoints();
      PointId qp = live[rng.UniformInt(live.size())];
      q.position = points.PositionOf(qp);
      opts.exclude_point = qp;
    } else {
      const Edge& e = edges[rng.UniformInt(edges.size())];
      q.position = {e.u, e.v, rng.Uniform(0.0, e.w)};
    }

    auto truth =
        UnrestrictedBruteForceRknn(view, points, q, opts).ValueOrDie();
    auto eager = UnrestrictedEagerRknn(view, points, reader, q, opts, ws)
                     .ValueOrDie();
    auto lazy = UnrestrictedLazyRknn(view, points, reader, q, opts, ws)
                    .ValueOrDie();
    auto lep = UnrestrictedLazyEpRknn(view, points, reader, q, opts, ws)
                   .ValueOrDie();
    auto em =
        UnrestrictedEagerMRknn(view, points, reader, &store, q, opts, ws)
            .ValueOrDie();

    EXPECT_EQ(Ids(eager), Ids(truth)) << "k=" << k << " seed=" << seed
                                      << " trial=" << trial;
    EXPECT_EQ(Ids(lazy), Ids(truth)) << "k=" << k << " seed=" << seed
                                     << " trial=" << trial;
    EXPECT_EQ(Ids(lep), Ids(truth)) << "k=" << k << " seed=" << seed
                                    << " trial=" << trial;
    EXPECT_EQ(Ids(em), Ids(truth)) << "k=" << k << " seed=" << seed
                                   << " trial=" << trial;
    // Verification-based algorithms report exact distances.
    for (size_t i = 0; i < truth.results.size(); ++i) {
      EXPECT_NEAR(eager.results[i].dist, truth.results[i].dist, 1e-9);
      EXPECT_NEAR(lazy.results[i].dist, truth.results[i].dist, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnrestrictedSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3, 4),
                                            ::testing::Bool()));

TEST(UnrestrictedAlgorithmsTest, MultiplePointsPerEdge) {
  auto g = graph::Graph::FromEdges(4, {{0, 1, 10.0},
                                       {1, 2, 4.0},
                                       {2, 3, 6.0},
                                       {0, 3, 5.0}})
               .ValueOrDie();
  // Three points crowded on edge (0,1), one elsewhere.
  auto points = EdgePointSet::Create(
                    g, {{0, 1, 2.0}, {0, 1, 5.0}, {0, 1, 9.0}, {2, 3, 3.0}})
                    .ValueOrDie();
  graph::GraphView view(&g);
  MemoryEdgePointReader reader(&points);
  SearchWorkspace ws;

  for (int k = 1; k <= 3; ++k) {
    RknnOptions opts;
    opts.k = k;
    UnrestrictedQuery q;
    q.position = {0, 1, 6.0};
    auto truth =
        UnrestrictedBruteForceRknn(view, points, q, opts).ValueOrDie();
    auto eager = UnrestrictedEagerRknn(view, points, reader, q, opts, ws)
                     .ValueOrDie();
    auto lazy = UnrestrictedLazyRknn(view, points, reader, q, opts, ws)
                    .ValueOrDie();
    EXPECT_EQ(Ids(eager), Ids(truth)) << "k=" << k;
    EXPECT_EQ(Ids(lazy), Ids(truth)) << "k=" << k;
  }
}

TEST(UnrestrictedAlgorithmsTest, RouteQueries) {
  Rng rng(71);
  auto g = RandomConnectedGraph(50, 1.2, rng);
  auto edges = g.CollectEdges();
  std::vector<EdgePosition> pos;
  auto chosen = rng.SampleWithoutReplacement(edges.size(), 10);
  for (uint64_t ei : chosen) {
    const Edge& e = edges[ei];
    pos.push_back({e.u, e.v, rng.Uniform(0.0, e.w)});
  }
  auto points = EdgePointSet::Create(g, pos).ValueOrDie();
  graph::GraphView view(&g);
  MemoryEdgePointReader reader(&points);
  SearchWorkspace ws;

  for (int trial = 0; trial < 6; ++trial) {
    RknnOptions opts;
    opts.k = 1 + static_cast<int>(rng.UniformInt(2));
    UnrestrictedQuery q;
    q.is_position = false;
    NodeId cur = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    q.route.push_back(cur);
    for (int i = 0; i < 5; ++i) {
      auto nbrs = g.Neighbors(cur);
      if (nbrs.empty()) {
        break;
      }
      cur = nbrs[rng.UniformInt(nbrs.size())].node;
      q.route.push_back(cur);
    }
    auto truth =
        UnrestrictedBruteForceRknn(view, points, q, opts).ValueOrDie();
    auto eager = UnrestrictedEagerRknn(view, points, reader, q, opts, ws)
                     .ValueOrDie();
    auto lazy = UnrestrictedLazyRknn(view, points, reader, q, opts, ws)
                    .ValueOrDie();
    auto lep = UnrestrictedLazyEpRknn(view, points, reader, q, opts, ws)
                   .ValueOrDie();
    EXPECT_EQ(Ids(eager), Ids(truth)) << "trial " << trial;
    EXPECT_EQ(Ids(lazy), Ids(truth)) << "trial " << trial;
    EXPECT_EQ(Ids(lep), Ids(truth)) << "trial " << trial;
  }
}

TEST(UnrestrictedMaintenanceTest, IncrementalEqualsRebuild) {
  Rng rng(123);
  auto g = RandomConnectedGraph(50, 1.0, rng);
  auto edges = g.CollectEdges();
  std::vector<EdgePosition> pos;
  auto chosen = rng.SampleWithoutReplacement(edges.size(), 8);
  for (uint64_t ei : chosen) {
    const Edge& e = edges[ei];
    pos.push_back({e.u, e.v, rng.Uniform(0.0, e.w)});
  }
  auto points = EdgePointSet::Create(g, pos).ValueOrDie();
  graph::GraphView view(&g);

  const uint32_t K = 2;
  MemoryKnnStore store(g.num_nodes(), K);
  ASSERT_TRUE(UnrestrictedBuildAllNn(view, points, &store).ok());

  for (int op = 0; op < 12; ++op) {
    if (rng.Bernoulli(0.5) && points.num_points() > 2) {
      auto live = points.LivePoints();
      PointId victim = live[rng.UniformInt(live.size())];
      EdgePosition old_pos = points.PositionOf(victim);
      Weight old_w = points.EdgeWeightOfPoint(victim);
      ASSERT_TRUE(points.RemovePoint(victim).ok());
      ASSERT_TRUE(UnrestrictedMaterializedDelete(view, points, victim,
                                                 old_pos, old_w, &store)
                      .ok());
    } else {
      const Edge& e = edges[rng.UniformInt(edges.size())];
      auto id = points.AddPoint(g, {e.u, e.v, rng.Uniform(0.0, e.w)});
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(
          UnrestrictedMaterializedInsert(view, points, *id, &store).ok());
    }
  }

  MemoryKnnStore fresh(g.num_nodes(), K);
  ASSERT_TRUE(UnrestrictedBuildAllNn(view, points, &fresh).ok());
  std::vector<NnEntry> a, b;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    ASSERT_TRUE(store.Read(n, &a).ok());
    ASSERT_TRUE(fresh.Read(n, &b).ok());
    ASSERT_EQ(a.size(), b.size()) << "node " << n;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].dist, b[i].dist, 1e-9) << "node " << n;
    }
  }
}

TEST(UnrestrictedAlgorithmsTest, InvalidQueries) {
  auto f = MakeFixture();
  graph::GraphView view(&f.g);
  MemoryEdgePointReader reader(&f.points);
  SearchWorkspace ws;
  UnrestrictedQuery bad_k;
  bad_k.position = {0, 1, 1.0};
  RknnOptions zero_k;
  zero_k.k = 0;
  EXPECT_FALSE(UnrestrictedEagerRknn(view, f.points, reader, bad_k,
                                     zero_k, ws)
                   .ok());

  UnrestrictedQuery no_edge;
  no_edge.position = {0, 5, 1.0};  // edge does not exist
  EXPECT_FALSE(UnrestrictedEagerRknn(view, f.points, reader, no_edge,
                                     RknnOptions{}, ws)
                   .ok());

  UnrestrictedQuery empty_route;
  empty_route.is_position = false;
  EXPECT_FALSE(UnrestrictedLazyRknn(view, f.points, reader, empty_route,
                                    RknnOptions{}, ws)
                   .ok());
}

}  // namespace
}  // namespace grnn::core
