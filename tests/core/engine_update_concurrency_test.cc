// Live-update concurrency stress for RknnEngine: 6 query threads and 2
// update threads hammer ONE engine over ONE shared sharded BufferPool.
// The updaters toggle two dedicated points (insert then delete, many
// rounds) through the engine's update path, so at any instant the world
// is one of four states: base, base+t0, base+t1, base+t0+t1. Every
// query result must equal the brute-force answer of ONE of those four
// worlds (the linearizability window: a query sees either the pre- or
// the post-update world, never a torn one), and no query/update counter
// may be lost.
//
// The same oracle harness runs against BOTH serving modes: the PR 3
// lock path (stored engine, per-domain shared_mutex) and the PR 6
// epoch-snapshot path (memory engine, snapshot_reads) — on the epoch
// path "one of the four worlds" literally means "one published
// WorldVersion", and the suite additionally checks the version/retire
// accounting and that limbo drains once the readers are gone.
//
// Registered under the `stress`, `update` and `serve` ctest labels; the
// ThreadSanitizer CI job is what actually proves the domain
// shared_mutexes, the epoch pin/retire protocol, the sharded pin table
// and the stat accounting correct.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "gen/grid.h"
#include "gen/points.h"

namespace grnn::core {
namespace {

// Sorted hosting nodes of a result. Toggled points get a fresh PointId
// on every re-insert, so results are compared by hosting node (at most
// one point lives per node; every world assigns a unique node set to
// each query answer).
std::vector<NodeId> Nodes(const RknnResult& r) {
  std::vector<NodeId> nodes;
  nodes.reserve(r.results.size());
  for (const PointMatch& m : r.results) {
    nodes.push_back(m.node);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

struct UpdateStressWorld {
  graph::Graph g;
  NodePointSet points{0};
  bench::StoredRestricted env;
  NodeId toggles[2] = {kInvalidNode, kInvalidNode};
  std::vector<QuerySpec> specs;
  // expected[world][spec] = brute-force node set; world bit i = toggle i
  // present.
  std::vector<std::vector<std::vector<NodeId>>> expected;
};

UpdateStressWorld MakeUpdateStressWorld(uint64_t seed) {
  UpdateStressWorld w;
  gen::GridConfig cfg;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.seed = seed;
  w.g = gen::GenerateGrid(cfg).ValueOrDie();
  Rng rng(seed * 11 + 5);
  w.points = gen::PlaceNodePoints(w.g.num_nodes(), 0.15, rng).ValueOrDie();
  // An 8-page pool over kDefaultConcurrentShards: constant eviction
  // traffic through every shard while updates rewrite KNN pages.
  w.env = bench::BuildStoredRestricted(w.g, w.points, /*K=*/4,
                                       /*pool_pages=*/8,
                                       storage::kDefaultConcurrentShards)
              .ValueOrDie();

  // Two dedicated toggle nodes, initially free.
  int found = 0;
  while (found < 2) {
    NodeId n = static_cast<NodeId>(rng.UniformInt(w.g.num_nodes()));
    if (!w.points.Contains(n) && (found == 0 || w.toggles[0] != n)) {
      w.toggles[found++] = n;
    }
  }

  auto live = w.points.LivePoints();
  for (Algorithm algo : kAllAlgorithms) {
    for (int k = 1; k <= 3; ++k) {
      PointId qp = live[rng.UniformInt(live.size())];
      w.specs.push_back(
          QuerySpec::Monochromatic(algo, w.points.NodeOf(qp), k, qp));
      w.specs.push_back(QuerySpec::Monochromatic(
          algo, static_cast<NodeId>(rng.UniformInt(w.g.num_nodes())), k));
    }
  }

  // Brute-force ground truth for all four toggle subsets, over throwaway
  // in-memory worlds (brute force needs no KNN store).
  w.expected.resize(4);
  for (int world = 0; world < 4; ++world) {
    NodePointSet world_points = w.points;
    for (int bit = 0; bit < 2; ++bit) {
      if ((world >> bit) & 1) {
        (void)world_points.AddPoint(w.toggles[bit]).ValueOrDie();
      }
    }
    graph::GraphView view(&w.g);
    EngineSources sources;
    sources.graph = &view;
    sources.points = &world_points;
    auto oracle = RknnEngine::Create(sources).ValueOrDie();
    for (const QuerySpec& spec : w.specs) {
      QuerySpec bf = spec;
      bf.algorithm = Algorithm::kBruteForce;
      w.expected[world].push_back(Nodes(oracle.Run(bf).ValueOrDie()));
    }
  }
  return w;
}

// The 6-reader/2-writer linearizability harness, shared by the lock-mode
// and epoch-snapshot suites below.
void RunUpdateStress(RknnEngine& engine, const UpdateStressWorld& w) {
  constexpr int kQueryThreads = 6;
  constexpr int kQueryPasses = 6;
  // Writer-starvation guard: readers run a FIXED number of passes and
  // the updaters toggle until the readers finish (capped), so the test
  // terminates promptly even under a reader-preferring shared_mutex.
  constexpr int kMaxToggleCycles = 4000;
  std::atomic<int> readers_running{kQueryThreads};
  std::atomic<uint64_t> queries_issued{0};
  std::atomic<uint64_t> toggle_cycles[2] = {{0}, {0}};
  std::atomic<int> query_mismatches{0};
  std::atomic<int> update_failures{0};
  std::atomic<int> mixed_mismatches{0};

  auto matches_some_world = [&](size_t spec_idx,
                                const RknnResult& result,
                                int required_bit) {
    const std::vector<NodeId> got = Nodes(result);
    for (int world = 0; world < 4; ++world) {
      if (required_bit >= 0 && ((world >> required_bit) & 1) == 0) {
        continue;  // this query ran while toggle `bit` was present
      }
      if (got == w.expected[static_cast<size_t>(world)][spec_idx]) {
        return true;
      }
    }
    return false;
  };

  std::vector<std::thread> threads;
  // Updater 0: plain ApplyUpdate insert/delete cycles on toggle 0.
  threads.emplace_back([&] {
    while (readers_running.load() > 0 &&
           toggle_cycles[0].load() < kMaxToggleCycles) {
      auto ins = engine.ApplyUpdate(UpdateSpec::InsertPoint(w.toggles[0]));
      if (!ins.ok()) {
        update_failures.fetch_add(1);
        break;
      }
      auto del = engine.ApplyUpdate(UpdateSpec::DeletePoint(ins->point));
      if (!del.ok()) {
        update_failures.fetch_add(1);
        break;
      }
      toggle_cycles[0].fetch_add(1);
    }
  });
  // Updater 1: the mixed path — insert, query (which must observe the
  // just-committed insert), delete, as ONE deterministic op stream.
  threads.emplace_back([&] {
    const size_t probe = 1 % w.specs.size();
    while (readers_running.load() > 0 &&
           toggle_cycles[1].load() < kMaxToggleCycles) {
      std::vector<RknnEngine::MixedOp> ops;
      ops.push_back(
          RknnEngine::MixedOp::Update(UpdateSpec::InsertPoint(w.toggles[1])));
      ops.push_back(RknnEngine::MixedOp::Query(w.specs[probe]));
      auto batch = engine.RunMixedBatch(ops);
      if (!batch.ok() || !batch->results[0].update.has_value() ||
          !batch->results[1].query.has_value()) {
        update_failures.fetch_add(1);
        break;
      }
      // The probe ran after our insert committed: only worlds with
      // toggle 1 present are admissible.
      if (!matches_some_world(probe, *batch->results[1].query,
                              /*required_bit=*/1)) {
        mixed_mismatches.fetch_add(1);
      }
      auto del = engine.ApplyUpdate(
          UpdateSpec::DeletePoint(batch->results[0].update->point));
      if (!del.ok()) {
        update_failures.fetch_add(1);
        break;
      }
      toggle_cycles[1].fetch_add(1);
    }
  });
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t issued = 0;
      for (int pass = 0; pass < kQueryPasses; ++pass) {
        for (size_t j = 0; j < w.specs.size(); ++j) {
          const size_t i =
              (j + static_cast<size_t>(t) * 5) % w.specs.size();
          auto r = engine.Run(w.specs[i]);
          issued++;
          if (!r.ok() || !matches_some_world(i, *r, /*required_bit=*/-1)) {
            query_mismatches.fetch_add(1);
          }
        }
        // Let blocked writers through between passes (shared_mutex may
        // prefer readers).
        std::this_thread::yield();
      }
      queries_issued.fetch_add(issued);
      readers_running.fetch_sub(1);
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(query_mismatches.load(), 0);
  EXPECT_EQ(mixed_mismatches.load(), 0);
  EXPECT_EQ(update_failures.load(), 0);
  // The window was real: both updaters got toggles through while the
  // readers were running.
  EXPECT_GE(toggle_cycles[0].load(), 1u);
  EXPECT_GE(toggle_cycles[1].load(), 1u);

  // Zero stat loss: every query and every update is counted exactly
  // once, across Run, ApplyUpdate and RunMixedBatch alike.
  const EngineStats stats = engine.lifetime_stats();
  const uint64_t cycles =
      toggle_cycles[0].load() + toggle_cycles[1].load();
  const uint64_t mixed_queries = toggle_cycles[1].load();  // one probe per cycle
  EXPECT_EQ(stats.queries, queries_issued.load() + mixed_queries);
  EXPECT_EQ(stats.updates, 2u * cycles);
  // Every insert rewrites at least the toggle node's own list.
  EXPECT_GE(stats.update.lists_written, cycles);

  // The world round-tripped: both toggles are deleted again, so a final
  // serial check must reproduce the base world exactly.
  for (size_t i = 0; i < w.specs.size(); ++i) {
    auto r = engine.Run(w.specs[i]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Nodes(*r), w.expected[0][i]) << "spec " << i;
  }
  EXPECT_GE(engine.num_pooled_workspaces(), 1u);
}

TEST(EngineUpdateConcurrencyTest, QueriesSeePreOrPostUpdateWorlds) {
  UpdateStressWorld w = MakeUpdateStressWorld(/*seed=*/11);
  NodePointSet points = w.points;
  auto engine =
      bench::MakeRestrictedUpdatableEngine(w.env, points).ValueOrDie();
  RunUpdateStress(engine, w);
  // Lock mode has no serving layer: epoch counters stay at zero.
  EXPECT_EQ(engine.epoch_stats().pins, 0u);
  EXPECT_EQ(engine.world_seq(), 0u);
}

// Satellite of the serving-layer PR: the SAME oracle harness over the
// epoch-snapshot path. Every result must match one published version,
// every update publishes exactly one version, and the retired-version
// limbo drains to zero once the readers are gone.
TEST(EngineUpdateConcurrencyTest, EpochSnapshotQueriesSeePublishedWorlds) {
  UpdateStressWorld w = MakeUpdateStressWorld(/*seed=*/11);
  graph::GraphView view(&w.g);
  NodePointSet points = w.points;
  MemoryKnnStore store(w.g.num_nodes(), /*k=*/4);
  ASSERT_TRUE(BuildAllNn(view, points, &store).ok());
  EngineSources sources;
  sources.graph = &view;
  sources.points = &points;
  sources.knn = &store;
  sources.updates.points = &points;
  sources.updates.knn = &store;
  sources.snapshot_reads = true;
  auto engine = RknnEngine::Create(sources).ValueOrDie();

  RunUpdateStress(engine, w);

  // Version accounting: every committed update published exactly one
  // version (and retired its predecessor); every dispatch pinned an
  // epoch; with no reader left, one reclaim pass empties limbo.
  const EngineStats stats = engine.lifetime_stats();
  EXPECT_EQ(engine.world_seq(), stats.updates);
  serve::EpochStats es = engine.epoch_stats();
  EXPECT_EQ(es.retired, stats.updates);
  EXPECT_GE(es.pins, stats.queries);
  engine.ReclaimVersions();
  es = engine.epoch_stats();
  EXPECT_EQ(es.limbo, 0u);
  EXPECT_EQ(es.reclaimed, es.retired);
}

// A mixed batch aborted by a failing op must still count the ops that
// committed before it — they mutated the world, so dropping their
// counters would be stat loss.
TEST(EngineUpdateConcurrencyTest, AbortedMixedBatchCountsCommittedOps) {
  UpdateStressWorld w = MakeUpdateStressWorld(/*seed=*/13);
  NodePointSet points = w.points;
  auto engine =
      bench::MakeRestrictedUpdatableEngine(w.env, points).ValueOrDie();

  std::vector<RknnEngine::MixedOp> ops;
  ops.push_back(
      RknnEngine::MixedOp::Update(UpdateSpec::InsertPoint(w.toggles[0])));
  QuerySpec bad = w.specs[0];
  bad.k = 0;  // fails validation after the insert committed
  ops.push_back(RknnEngine::MixedOp::Query(bad));
  auto batch = engine.RunMixedBatch(ops);
  ASSERT_FALSE(batch.ok());

  const EngineStats stats = engine.lifetime_stats();
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_GE(stats.update.lists_written, 1u);
  EXPECT_EQ(stats.queries, 0u);
  // And the insert really persisted: the toggle world answers now.
  QuerySpec probe = w.specs[0];
  probe.algorithm = Algorithm::kBruteForce;
  auto r = engine.Run(probe);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Nodes(*r), w.expected[1][0]);
}

}  // namespace
}  // namespace grnn::core
