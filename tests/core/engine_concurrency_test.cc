// Concurrency stress for RknnEngine: many OS threads hammering Run and
// RunBatch (serial and parallel) on ONE engine over ONE shared
// disk-backed BufferPool. Results must be stable (every thread sees the
// serial answer) and no stat is lost (lifetime counters add up exactly).
//
// Registered under the `stress` ctest label and exercised by the
// ThreadSanitizer CI job, which is what actually proves the locking in
// BufferPool / RknnEngine::State / ThreadPool correct.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "gen/grid.h"
#include "gen/points.h"
#include "test_fixtures.h"

namespace grnn::core {
namespace {

using testfix::Ids;

struct StressWorld {
  graph::Graph g;
  NodePointSet points{0};
  bench::StoredRestricted env;  // paged graph + KNN file + buffer pool
  std::vector<QuerySpec> specs;
  std::vector<std::vector<PointMatch>> expected;  // serial answers
  SearchStats serial_sum;
};

StressWorld MakeStressWorld(uint64_t seed, size_t num_specs) {
  StressWorld w;
  gen::GridConfig cfg;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.seed = seed;
  w.g = gen::GenerateGrid(cfg).ValueOrDie();
  Rng rng(seed * 7 + 3);
  w.points = gen::PlaceNodePoints(w.g.num_nodes(), 0.15, rng).ValueOrDie();
  // A small pool forces constant eviction traffic, maximizing contention
  // on the shared pin/unpin path.
  w.env = bench::BuildStoredRestricted(w.g, w.points, /*K=*/3,
                                       /*pool_pages=*/8)
              .ValueOrDie();

  auto live = w.points.LivePoints();
  for (size_t i = 0; i < num_specs; ++i) {
    const Algorithm algo = kAllAlgorithms[i % std::size(kAllAlgorithms)];
    const int k = 1 + static_cast<int>(i % 3);
    if (i % 2 == 0) {
      PointId qp = live[rng.UniformInt(live.size())];
      w.specs.push_back(
          QuerySpec::Monochromatic(algo, w.points.NodeOf(qp), k, qp));
    } else {
      w.specs.push_back(QuerySpec::Monochromatic(
          algo, static_cast<NodeId>(rng.UniformInt(w.g.num_nodes())), k));
    }
  }

  // Serial ground truth from a throwaway engine over the same sources.
  auto engine = bench::MakeRestrictedEngine(w.env, w.points).ValueOrDie();
  auto batch = engine.RunBatch(w.specs).ValueOrDie();
  for (const RknnResult& r : batch.results) {
    w.expected.push_back(r.results);
    w.serial_sum += r.stats;
  }
  return w;
}

TEST(EngineConcurrencyTest, ManyThreadsRunOnOneEngine) {
  StressWorld w = MakeStressWorld(/*seed=*/21, /*num_specs=*/48);
  auto engine = bench::MakeRestrictedEngine(w.env, w.points).ValueOrDie();

  constexpr int kThreads = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the spec list from its own offset so threads
      // collide on different pages at any instant.
      for (size_t j = 0; j < w.specs.size(); ++j) {
        const size_t i = (j + static_cast<size_t>(t) * 7) % w.specs.size();
        auto r = engine.Run(w.specs[i]);
        if (!r.ok() || r->results != w.expected[i]) {
          mismatches[t]++;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }

  // No stat loss: every one of the kThreads * |specs| queries is counted
  // exactly once, and the deterministic search counters add up exactly.
  const EngineStats stats = engine.lifetime_stats();
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kThreads) * w.specs.size());
  EXPECT_EQ(stats.search.nodes_expanded,
            kThreads * w.serial_sum.nodes_expanded);
  EXPECT_EQ(stats.search.verify_calls,
            kThreads * w.serial_sum.verify_calls);
  EXPECT_EQ(stats.search.heap_pushes, kThreads * w.serial_sum.heap_pushes);
  // All leased workspaces made it back to the pool.
  EXPECT_GE(engine.num_pooled_workspaces(), 1u);
  EXPECT_LE(engine.num_pooled_workspaces(),
            static_cast<size_t>(kThreads));
}

TEST(EngineConcurrencyTest, ConcurrentSerialAndParallelBatches) {
  StressWorld w = MakeStressWorld(/*seed=*/37, /*num_specs=*/40);
  auto engine = bench::MakeRestrictedEngine(w.env, w.points).ValueOrDie();

  constexpr int kThreads = 6;
  constexpr int kRounds = 3;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Mix the three entry points across threads and rounds:
        // parallel batches, serial batches and single-query runs.
        if (t % 3 == 0) {
          auto batch =
              engine.RunBatch(w.specs, ParallelOptions{3, 4});
          if (!batch.ok() ||
              batch->stats.queries != w.specs.size()) {
            mismatches[t]++;
            continue;
          }
          for (size_t i = 0; i < w.specs.size(); ++i) {
            if (batch->results[i].results != w.expected[i]) {
              mismatches[t]++;
            }
          }
        } else if (t % 3 == 1) {
          auto batch = engine.RunBatch(w.specs);
          if (!batch.ok()) {
            mismatches[t]++;
            continue;
          }
          for (size_t i = 0; i < w.specs.size(); ++i) {
            if (batch->results[i].results != w.expected[i]) {
              mismatches[t]++;
            }
          }
        } else {
          for (size_t i = 0; i < w.specs.size(); ++i) {
            auto r = engine.Run(w.specs[i]);
            if (!r.ok() || r->results != w.expected[i]) {
              mismatches[t]++;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  // Every entry point funnels into the same lifetime accounting.
  const EngineStats stats = engine.lifetime_stats();
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kThreads) * kRounds *
                               w.specs.size());
  EXPECT_EQ(stats.search.nodes_expanded,
            static_cast<uint64_t>(kThreads) * kRounds *
                w.serial_sum.nodes_expanded);
}

}  // namespace
}  // namespace grnn::core
