// Correctness of eager / lazy / lazy-EP / eager-M:
//  1. the paper's worked example (Fig 3 narrative),
//  2. hand-checked edge cases,
//  3. randomized differential testing against the brute-force oracle over
//     (graph family x |V| x density x k x seed) sweeps.

#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "core/brute_force.h"
#include "core/eager.h"
#include "core/engine.h"
#include "core/lazy.h"
#include "core/lazy_ep.h"
#include "core/materialize.h"
#include "core/query.h"
#include "core/workspace.h"
#include "graph/dijkstra.h"
#include "graph/network_view.h"
#include "test_fixtures.h"

namespace grnn::core {
namespace {

using testfix::Ids;
using testfix::PaperExample;
using testfix::RandomConnectedGraph;
using testfix::RandomPoints;

// Dispatches through a throwaway engine session: the engine is the only
// one-shot entry point since the PR 1 shims were removed.
Result<RknnResult> RunAlgo(Algorithm algo, const graph::NetworkView& view,
                           const NodePointSet& points,
                           std::vector<NodeId> query,
                           const RknnOptions& opts) {
  std::optional<MemoryKnnStore> store;
  EngineSources sources;
  sources.graph = &view;
  sources.points = &points;
  if (algo == Algorithm::kEagerM) {
    store.emplace(view.num_nodes(), static_cast<uint32_t>(opts.k) + 2);
    auto st = BuildAllNn(view, points, &*store);
    if (!st.ok()) {
      return st;
    }
    sources.knn = &*store;
  }
  GRNN_ASSIGN_OR_RETURN(RknnEngine engine, RknnEngine::Create(sources));
  QuerySpec spec;
  spec.kind = query.size() == 1 ? QueryKind::kMonochromatic
                                : QueryKind::kContinuous;
  spec.algorithm = algo;
  spec.k = opts.k;
  spec.exclude_point = opts.exclude_point;
  spec.query_nodes = std::move(query);
  return engine.Run(spec);
}

class AllAlgorithmsTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AllAlgorithmsTest, PaperExampleRnn) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  auto r =
      RunAlgo(GetParam(), view, f.points, {f.query_node}, RknnOptions{})
          .ValueOrDie();
  // Section 3.2's walkthrough: RNN(q) = {p1, p2}.
  EXPECT_EQ(Ids(r), (std::vector<PointId>{0, 1}));
}

TEST_P(AllAlgorithmsTest, PaperExampleR2nn) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  RknnOptions opts;
  opts.k = 2;
  auto r = RunAlgo(GetParam(), view, f.points, {f.query_node}, opts)
               .ValueOrDie();
  EXPECT_EQ(Ids(r), (std::vector<PointId>{0, 1, 2}));
}

TEST_P(AllAlgorithmsTest, QueryOnPointNodeExcludesItself) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  // Query from p1's node (n6), excluding p1 itself.
  RknnOptions opts;
  opts.exclude_point = 0;
  auto r = RunAlgo(GetParam(), view, f.points, {5}, opts).ValueOrDie();
  // From n6: d(p2) = 9 (n6-n2-n5), d(p3) = 8 (n6-n3-n7).
  // p2's NN among {p3} U {q}: d(p2,p3) = 17 > 9 -> q is NN of p2: IN.
  // p3: d(p3, q@n6) = 8, d(p3, p2) = 17 -> IN.
  EXPECT_EQ(Ids(r), (std::vector<PointId>{1, 2}));
}

TEST_P(AllAlgorithmsTest, EmptyPointSetYieldsNoResults) {
  auto f = PaperExample();
  NodePointSet empty(f.g.num_nodes());
  graph::GraphView view(&f.g);
  auto r = RunAlgo(GetParam(), view, empty, {3}, RknnOptions{})
               .ValueOrDie();
  EXPECT_TRUE(r.results.empty());
}

TEST_P(AllAlgorithmsTest, SinglePointIsAlwaysRnn) {
  // One data point, no competitors: always in RNN(q) when reachable.
  auto g = graph::Graph::FromEdges(
               4, {{0, 1, 2.0}, {1, 2, 2.0}, {2, 3, 2.0}})
               .ValueOrDie();
  auto pts = NodePointSet::FromLocations(4, {3}).ValueOrDie();
  graph::GraphView view(&g);
  auto r = RunAlgo(GetParam(), view, pts, {0}, RknnOptions{}).ValueOrDie();
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].point, 0u);
  EXPECT_DOUBLE_EQ(r.results[0].dist, 6.0);
}

TEST_P(AllAlgorithmsTest, DisconnectedPointsAreNotResults) {
  auto g =
      graph::Graph::FromEdges(5, {{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}})
          .ValueOrDie();
  auto pts = NodePointSet::FromLocations(5, {1, 3}).ValueOrDie();
  graph::GraphView view(&g);
  auto r = RunAlgo(GetParam(), view, pts, {0}, RknnOptions{}).ValueOrDie();
  ASSERT_EQ(Ids(r), (std::vector<PointId>{0}));  // only the reachable one
}

TEST_P(AllAlgorithmsTest, KLargerThanPointCountReturnsAllReachable) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  RknnOptions opts;
  opts.k = 10;
  auto r = RunAlgo(GetParam(), view, f.points, {f.query_node}, opts)
               .ValueOrDie();
  EXPECT_EQ(Ids(r), (std::vector<PointId>{0, 1, 2}));
}

TEST_P(AllAlgorithmsTest, InvalidQueriesAreRejected) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  RknnOptions bad_k;
  bad_k.k = 0;
  EXPECT_FALSE(RunAlgo(GetParam(), view, f.points, {3}, bad_k).ok());
  EXPECT_FALSE(
      RunAlgo(GetParam(), view, f.points, {}, RknnOptions{}).ok());
  EXPECT_FALSE(
      RunAlgo(GetParam(), view, f.points, {99}, RknnOptions{}).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AllAlgorithmsTest,
    ::testing::Values(Algorithm::kEager, Algorithm::kLazy,
                      Algorithm::kLazyEp, Algorithm::kEagerM,
                      Algorithm::kBruteForce),
    [](const auto& info) {
      switch (info.param) {
        case Algorithm::kEager:
          return "Eager";
        case Algorithm::kLazy:
          return "Lazy";
        case Algorithm::kLazyEp:
          return "LazyEp";
        case Algorithm::kEagerM:
          return "EagerM";
        default:
          return "BruteForce";
      }
    });

// ---------------------------------------------------------------------
// Differential sweeps: every optimized algorithm must return exactly the
// brute-force answer, for many random graphs, densities and k.
// Param: (num_nodes, extra_edge_factor, density, k, unit_weights, seed).
using SweepParam = std::tuple<int, double, double, int, bool, int>;

class DifferentialSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DifferentialSweep, AllAlgorithmsMatchBruteForce) {
  const auto [n, extra, density, k, unit, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
  auto g = RandomConnectedGraph(static_cast<NodeId>(n), extra, rng, unit);
  const size_t num_points = std::max<size_t>(
      1, static_cast<size_t>(density * static_cast<double>(n)));
  auto points = RandomPoints(g.num_nodes(), num_points, rng);
  graph::GraphView view(&g);

  MemoryKnnStore store(g.num_nodes(), static_cast<uint32_t>(k) + 1);
  ASSERT_TRUE(BuildAllNn(view, points, &store).ok());
  SearchWorkspace ws;

  // Several queries per instance: from data points (with self-exclusion,
  // as the paper's workloads do) and from random empty nodes.
  for (int trial = 0; trial < 4; ++trial) {
    RknnOptions opts;
    opts.k = k;
    NodeId qnode;
    if (trial % 2 == 0 && points.num_points() > 0) {
      auto live = points.LivePoints();
      PointId qp = live[rng.UniformInt(live.size())];
      qnode = points.NodeOf(qp);
      opts.exclude_point = qp;
    } else {
      qnode = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      opts.exclude_point = points.PointAt(qnode);  // maybe kInvalidPoint
    }
    std::vector<NodeId> query{qnode};

    auto truth = BruteForceRknn(view, points, query, opts).ValueOrDie();
    auto eager = EagerRknn(view, points, query, opts, ws).ValueOrDie();
    auto lazy = LazyRknn(view, points, query, opts, ws).ValueOrDie();
    auto lazy_ep = LazyEpRknn(view, points, query, opts, ws).ValueOrDie();
    auto eager_m =
        EagerMRknn(view, points, &store, query, opts, ws).ValueOrDie();

    EXPECT_EQ(Ids(eager), Ids(truth))
        << "eager mismatch @ n=" << n << " k=" << k << " seed=" << seed
        << " q=" << qnode;
    EXPECT_EQ(Ids(lazy), Ids(truth))
        << "lazy mismatch @ n=" << n << " k=" << k << " seed=" << seed
        << " q=" << qnode;
    EXPECT_EQ(Ids(lazy_ep), Ids(truth))
        << "lazy-EP mismatch @ n=" << n << " k=" << k << " seed=" << seed
        << " q=" << qnode;
    EXPECT_EQ(Ids(eager_m), Ids(truth))
        << "eager-M mismatch @ n=" << n << " k=" << k << " seed=" << seed
        << " q=" << qnode;

    // Exact distances for verification-based algorithms.
    for (size_t i = 0; i < truth.results.size(); ++i) {
      EXPECT_NEAR(eager.results[i].dist, truth.results[i].dist, 1e-9);
      EXPECT_NEAR(lazy.results[i].dist, truth.results[i].dist, 1e-9);
      EXPECT_NEAR(lazy_ep.results[i].dist, truth.results[i].dist, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeightedGraphs, DifferentialSweep,
    ::testing::Combine(::testing::Values(30, 80, 150),   // |V|
                       ::testing::Values(0.5, 2.0),      // extra edges
                       ::testing::Values(0.05, 0.2),     // density
                       ::testing::Values(1, 2, 4),       // k
                       ::testing::Values(false),         // weighted
                       ::testing::Values(1, 2)));        // seed

INSTANTIATE_TEST_SUITE_P(
    UnitWeightGraphs, DifferentialSweep,
    ::testing::Combine(::testing::Values(60),        // |V|
                       ::testing::Values(1.0, 3.0),  // extra edges
                       ::testing::Values(0.1, 0.3),  // density
                       ::testing::Values(1, 3),      // k (ties abound)
                       ::testing::Values(true),      // unit weights
                       ::testing::Values(3, 4, 5)));

// RkNN monotonicity: results grow with k.
TEST(RknnPropertyTest, ResultsMonotoneInK) {
  Rng rng(77);
  SearchWorkspace ws;
  for (int trial = 0; trial < 10; ++trial) {
    auto g = RandomConnectedGraph(60, 1.5, rng);
    auto points = RandomPoints(g.num_nodes(), 10, rng);
    graph::GraphView view(&g);
    NodeId q = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    RknnOptions opts;
    opts.exclude_point = points.PointAt(q);
    std::vector<PointId> prev;
    for (int k = 1; k <= 5; ++k) {
      opts.k = k;
      auto r = EagerRknn(view, points, std::vector<NodeId>{q}, opts, ws)
                   .ValueOrDie();
      auto ids = Ids(r);
      // prev must be a subset of ids.
      for (PointId p : prev) {
        EXPECT_TRUE(std::find(ids.begin(), ids.end(), p) != ids.end())
            << "k=" << k;
      }
      prev = ids;
    }
  }
}

// Lemma 1 sanity: eager never reports a point whose path was pruned; in
// particular all reported distances are exact shortest-path distances.
TEST(RknnPropertyTest, ReportedDistancesAreShortestPaths) {
  Rng rng(99);
  auto g = RandomConnectedGraph(80, 1.0, rng);
  auto points = RandomPoints(g.num_nodes(), 12, rng);
  graph::GraphView view(&g);
  SearchWorkspace ws;
  for (int trial = 0; trial < 5; ++trial) {
    NodeId q = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    RknnOptions opts;
    opts.k = 2;
    opts.exclude_point = points.PointAt(q);
    auto dist = graph::SingleSourceDistances(view, q).ValueOrDie();
    auto r = EagerRknn(view, points, std::vector<NodeId>{q}, opts, ws)
                 .ValueOrDie();
    for (const PointMatch& m : r.results) {
      EXPECT_NEAR(m.dist, dist[m.node], 1e-9);
    }
  }
}

// The query's own point never appears in its RkNN set.
TEST(RknnPropertyTest, SelfNeverInResult) {
  Rng rng(123);
  auto g = RandomConnectedGraph(50, 1.0, rng);
  auto points = RandomPoints(g.num_nodes(), 15, rng);
  graph::GraphView view(&g);
  for (PointId qp : points.LivePoints()) {
    RknnOptions opts;
    opts.k = 3;
    opts.exclude_point = qp;
    std::vector<NodeId> query{points.NodeOf(qp)};
    for (Algorithm a : {Algorithm::kEager, Algorithm::kLazy,
                        Algorithm::kLazyEp, Algorithm::kBruteForce}) {
      auto r = RunAlgo(a, view, points, query, opts).ValueOrDie();
      for (const PointMatch& m : r.results) {
        EXPECT_NE(m.point, qp);
      }
    }
  }
}

}  // namespace
}  // namespace grnn::core
