// Bichromatic RkNN (paper Section 5.1): node qualification over the site
// set Q, then collecting the P-points on qualified nodes.

#include "core/bichromatic.h"

#include <gtest/gtest.h>

#include "core/workspace.h"
#include "graph/network_view.h"
#include "test_fixtures.h"

namespace grnn::core {
namespace {

using testfix::Ids;
using testfix::RandomConnectedGraph;

// A linear "road" scenario in the spirit of Fig 1b: residential blocks
// (P) along a street, restaurants (Q) competing for them.
//
//   b0 -- b1 -- r0 -- b2 -- b3 -- r1 -- b4     (unit weights)
// nodes: 0     1     2     3     4     5     6
// P = blocks at {0,1,3,4,6}; Q = restaurants at {2 (q), 5}.
struct RoadFixture {
  graph::Graph g;
  NodePointSet blocks{0};
  NodePointSet restaurants{0};
};

RoadFixture MakeRoad() {
  RoadFixture f;
  std::vector<Edge> edges;
  for (NodeId u = 0; u + 1 < 7; ++u) {
    edges.push_back({u, static_cast<NodeId>(u + 1), 1.0});
  }
  f.g = graph::Graph::FromEdges(7, edges).ValueOrDie();
  f.blocks = NodePointSet::FromLocations(7, {0, 1, 3, 4, 6}).ValueOrDie();
  f.restaurants = NodePointSet::FromLocations(7, {2, 5}).ValueOrDie();
  return f;
}

TEST(BichromaticTest, RoadScenarioK1) {
  auto f = MakeRoad();
  graph::GraphView view(&f.g);
  RknnOptions opts;
  opts.exclude_point = 0;  // restaurant 0 (at node 2) is the query
  SearchWorkspace ws;
  auto r = BichromaticRknn(view, f.blocks, f.restaurants,
                           std::vector<NodeId>{2}, opts, ws)
               .ValueOrDie();
  // Blocks closer to node 2 than to node 5: b0(0)@d2, b1(1)@d1, b2(2)@d1.
  // b3 at node 4: d(q)=2, d(r1)=1 -> out. b4 at node 6: d(q)=4, d(r1)=1.
  EXPECT_EQ(Ids(r), (std::vector<PointId>{0, 1, 2}));
}

TEST(BichromaticTest, RoadScenarioOtherRestaurant) {
  auto f = MakeRoad();
  graph::GraphView view(&f.g);
  RknnOptions opts;
  opts.exclude_point = 1;  // query from restaurant 1 (node 5)
  SearchWorkspace ws;
  auto r = BichromaticRknn(view, f.blocks, f.restaurants,
                           std::vector<NodeId>{5}, opts, ws)
               .ValueOrDie();
  EXPECT_EQ(Ids(r), (std::vector<PointId>{3, 4}));  // b3@4, b4@6
}

TEST(BichromaticTest, K2CoversBothRestaurants) {
  auto f = MakeRoad();
  graph::GraphView view(&f.g);
  RknnOptions opts;
  opts.k = 2;
  opts.exclude_point = 0;
  SearchWorkspace ws;
  auto r = BichromaticRknn(view, f.blocks, f.restaurants,
                           std::vector<NodeId>{2}, opts, ws)
               .ValueOrDie();
  // With only one competing restaurant, every connected block qualifies.
  EXPECT_EQ(Ids(r), (std::vector<PointId>{0, 1, 2, 3, 4}));
}

TEST(BichromaticTest, NewSitePlacementQuery) {
  // "What if we open a restaurant at node 6?" -- query node hosts no site.
  auto f = MakeRoad();
  graph::GraphView view(&f.g);
  SearchWorkspace ws;
  auto r = BichromaticRknn(view, f.blocks, f.restaurants,
                           std::vector<NodeId>{6}, RknnOptions{}, ws)
               .ValueOrDie();
  // Block b4@6: d=0 vs restaurants at >= 1 -> in. b3@4: d(q@6)=2,
  // d(r1@5)=1 -> out. Others are closer to existing restaurants.
  EXPECT_EQ(Ids(r), (std::vector<PointId>{4}));
}

class BichromaticSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BichromaticSweep, EagerAndMaterializedMatchBruteForce) {
  const auto [k, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 271 + 5);
  auto g = RandomConnectedGraph(80, 1.2, rng);
  graph::GraphView view(&g);

  // Disjoint random placements for P and Q.
  auto all = rng.SampleWithoutReplacement(g.num_nodes(), 24);
  std::vector<NodeId> p_locs(all.begin(), all.begin() + 16);
  std::vector<NodeId> q_locs(all.begin() + 16, all.end());
  auto P = NodePointSet::FromLocations(g.num_nodes(), p_locs).ValueOrDie();
  auto Q = NodePointSet::FromLocations(g.num_nodes(), q_locs).ValueOrDie();

  MemoryKnnStore site_knn(g.num_nodes(), static_cast<uint32_t>(k));
  ASSERT_TRUE(BuildAllNn(view, Q, &site_knn).ok());
  SearchWorkspace ws;

  for (PointId qs : Q.LivePoints()) {
    RknnOptions opts;
    opts.k = k;
    opts.exclude_point = qs;
    std::vector<NodeId> query{Q.NodeOf(qs)};

    auto truth =
        BruteForceBichromaticRknn(view, P, Q, query, opts).ValueOrDie();
    auto eager = BichromaticRknn(view, P, Q, query, opts, ws).ValueOrDie();
    auto mat = BichromaticRknnMaterialized(view, P, Q, &site_knn, query,
                                           opts, ws)
                   .ValueOrDie();
    EXPECT_EQ(Ids(eager), Ids(truth)) << "site " << qs << " k=" << k;
    EXPECT_EQ(Ids(mat), Ids(truth)) << "site " << qs << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BichromaticSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 3)));

TEST(BichromaticTest, EmptySitesMakesEveryConnectedBlockQualify) {
  auto f = MakeRoad();
  graph::GraphView view(&f.g);
  NodePointSet no_sites(f.g.num_nodes());
  SearchWorkspace ws;
  auto r = BichromaticRknn(view, f.blocks, no_sites,
                           std::vector<NodeId>{2}, RknnOptions{}, ws)
               .ValueOrDie();
  EXPECT_EQ(r.results.size(), f.blocks.num_points());
}

TEST(BichromaticTest, InvalidArguments) {
  auto f = MakeRoad();
  graph::GraphView view(&f.g);
  RknnOptions bad;
  bad.k = 0;
  SearchWorkspace ws;
  EXPECT_FALSE(BichromaticRknn(view, f.blocks, f.restaurants,
                               std::vector<NodeId>{2}, bad, ws)
                   .ok());
  EXPECT_FALSE(BichromaticRknn(view, f.blocks, f.restaurants,
                               std::vector<NodeId>{}, RknnOptions{}, ws)
                   .ok());
  EXPECT_FALSE(BichromaticRknnMaterialized(view, f.blocks, f.restaurants,
                                           nullptr, std::vector<NodeId>{2},
                                           RknnOptions{}, ws)
                   .ok());
}

}  // namespace
}  // namespace grnn::core
