#include "core/primitives.h"

#include <gtest/gtest.h>

#include "graph/network_view.h"
#include "test_fixtures.h"

namespace grnn::core {
namespace {

using testfix::PaperExample;

TEST(RangeNnTest, PaperExampleRangeSevenExcludesBoundary) {
  // range-NN(n4, 1, 7) has no results: the NN p1 of n4 is at distance
  // exactly 7 >= e (Section 3.1's own example).
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  SearchStats stats;
  auto hits =
      searcher.RangeNn(/*source=*/3, 1, 7.0, kInvalidPoint, &stats)
          .ValueOrDie();
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(stats.range_nn_calls, 1u);
}

TEST(RangeNnTest, PaperExampleRangeEightFindsP1) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  auto hits =
      searcher.RangeNn(3, 1, 7.5, kInvalidPoint, nullptr).ValueOrDie();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].point, 0u);  // p1
  EXPECT_DOUBLE_EQ(hits[0].dist, 7.0);
}

TEST(RangeNnTest, RangeNnAroundN3FindsP1AtThree) {
  // Eager's first range-NN in the walkthrough: range-NN(n3, 1, 4) -> p1@3.
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  auto hits =
      searcher.RangeNn(2, 1, 4.0, kInvalidPoint, nullptr).ValueOrDie();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].point, 0u);
  EXPECT_DOUBLE_EQ(hits[0].dist, 3.0);
}

TEST(RangeNnTest, KLimitsResults) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  auto one = searcher.RangeNn(3, 1, 100.0, kInvalidPoint, nullptr)
                 .ValueOrDie();
  EXPECT_EQ(one.size(), 1u);
  auto all = searcher.RangeNn(3, 5, 100.0, kInvalidPoint, nullptr)
                 .ValueOrDie();
  ASSERT_EQ(all.size(), 3u);
  // Ascending by distance: p1@7, p2@8, p3@9.
  EXPECT_EQ(all[0].point, 0u);
  EXPECT_EQ(all[1].point, 1u);
  EXPECT_EQ(all[2].point, 2u);
  EXPECT_DOUBLE_EQ(all[2].dist, 9.0);
}

TEST(RangeNnTest, ExcludePointSkipsIt) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  auto hits =
      searcher.RangeNn(3, 1, 100.0, /*exclude=*/0, nullptr).ValueOrDie();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].point, 1u);  // p2 instead of excluded p1
}

TEST(RangeNnTest, ZeroOrNegativeRangeIsEmpty) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  EXPECT_TRUE(
      searcher.RangeNn(3, 1, 0.0, kInvalidPoint, nullptr)->empty());
}

TEST(RangeNnTest, InvalidArguments) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  EXPECT_FALSE(searcher.RangeNn(99, 1, 1.0, kInvalidPoint, nullptr).ok());
  EXPECT_FALSE(searcher.RangeNn(0, 0, 1.0, kInvalidPoint, nullptr).ok());
}

TEST(VerifyTest, PaperExampleP1IsRnn) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  SearchStats stats;
  auto v = searcher.Verify(/*candidate=*/0, 1, {3}, kInvalidPoint, &stats)
               .ValueOrDie();
  EXPECT_TRUE(v.is_rknn);
  EXPECT_DOUBLE_EQ(v.dist_to_query, 7.0);
  EXPECT_EQ(stats.verify_calls, 1u);
}

TEST(VerifyTest, PaperExampleP2IsRnn) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  auto v =
      searcher.Verify(1, 1, {3}, kInvalidPoint, nullptr).ValueOrDie();
  EXPECT_TRUE(v.is_rknn);
  EXPECT_DOUBLE_EQ(v.dist_to_query, 8.0);
}

TEST(VerifyTest, PaperExampleP3IsNotRnn) {
  // d(p3, q) = 9 but d(p3, p1) = 8 < 9.
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  auto v =
      searcher.Verify(2, 1, {3}, kInvalidPoint, nullptr).ValueOrDie();
  EXPECT_FALSE(v.is_rknn);
}

TEST(VerifyTest, P3IsR2nn) {
  // With k = 2, one closer competitor is allowed.
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  auto v =
      searcher.Verify(2, 2, {3}, kInvalidPoint, nullptr).ValueOrDie();
  EXPECT_TRUE(v.is_rknn);
  EXPECT_DOUBLE_EQ(v.dist_to_query, 9.0);
}

TEST(VerifyTest, MultiSourceUsesNearestQueryNode) {
  // Route {n4, n3}: d(p1, r) = min(7, 3) = 3.
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  auto v =
      searcher.Verify(0, 1, {3, 2}, kInvalidPoint, nullptr).ValueOrDie();
  EXPECT_TRUE(v.is_rknn);
  EXPECT_DOUBLE_EQ(v.dist_to_query, 3.0);
}

TEST(VerifyTest, DisconnectedQueryFails) {
  auto g =
      graph::Graph::FromEdges(4, {{0, 1, 1.0}, {2, 3, 1.0}}).ValueOrDie();
  auto pts = NodePointSet::FromLocations(4, {0}).ValueOrDie();
  graph::GraphView view(&g);
  NnSearcher searcher(&view, &pts);
  auto v =
      searcher.Verify(0, 1, {3}, kInvalidPoint, nullptr).ValueOrDie();
  EXPECT_FALSE(v.is_rknn);
  EXPECT_EQ(v.dist_to_query, kInfinity);
}

TEST(VerifyTest, InvalidCandidateFails) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  NnSearcher searcher(&view, &f.points);
  EXPECT_FALSE(searcher.Verify(99, 1, {3}, kInvalidPoint, nullptr).ok());
  EXPECT_FALSE(searcher.Verify(0, 1, {}, kInvalidPoint, nullptr).ok());
  EXPECT_FALSE(searcher.Verify(0, 1, {99}, kInvalidPoint, nullptr).ok());
}

TEST(StampedStructuresTest, ResetInvalidatesEntries) {
  StampedDistances d;
  d.Reset(4);
  d.Set(1, 2.5);
  EXPECT_TRUE(d.Has(1));
  EXPECT_DOUBLE_EQ(d.Get(1), 2.5);
  EXPECT_EQ(d.Get(0), kInfinity);
  d.Reset(4);
  EXPECT_FALSE(d.Has(1));

  StampedSet s;
  s.Reset(4);
  s.Insert(2);
  EXPECT_TRUE(s.Contains(2));
  EXPECT_FALSE(s.Contains(1));
  s.Reset(4);
  EXPECT_FALSE(s.Contains(2));
}

TEST(StampedStructuresTest, GrowsAcrossResets) {
  StampedSet s;
  s.Reset(2);
  s.Insert(1);
  s.Reset(10);
  s.Insert(9);
  EXPECT_TRUE(s.Contains(9));
  EXPECT_FALSE(s.Contains(1));
}

}  // namespace
}  // namespace grnn::core
