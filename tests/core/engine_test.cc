// RknnEngine: the unified session API. Every (query kind x algorithm)
// combination is cross-checked against the brute-force oracle on small
// fixture graphs; batched execution must match one-at-a-time execution
// and reuse the workspace without leaking state between queries.

#include "core/engine.h"

#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "graph/network_view.h"
#include "test_fixtures.h"

namespace grnn::core {
namespace {

using testfix::Ids;
using testfix::RandomConnectedGraph;

// One world with every point source: node points P, sites Q and
// edge-resident points, plus the materializations each kind needs.
struct EngineWorld {
  graph::Graph g;
  std::optional<graph::GraphView> view;
  NodePointSet points{0};
  NodePointSet sites{0};
  EdgePointSet edge_points;
  MemoryKnnStore knn{0, 1};
  MemoryKnnStore site_knn{0, 1};
  MemoryKnnStore edge_knn{0, 1};
};

std::unique_ptr<EngineWorld> MakeWorld(uint64_t seed, uint32_t max_k) {
  auto w = std::make_unique<EngineWorld>();
  Rng rng(seed * 7919 + 17);
  w->g = RandomConnectedGraph(40, 1.0, rng);
  w->view.emplace(&w->g);

  // Node points P on 10 distinct nodes, sites Q on 6 others.
  auto p_nodes = rng.SampleWithoutReplacement(w->g.num_nodes(), 16);
  std::vector<NodeId> p_locs(p_nodes.begin(), p_nodes.begin() + 10);
  std::vector<NodeId> q_locs(p_nodes.begin() + 10, p_nodes.end());
  w->points =
      NodePointSet::FromLocations(w->g.num_nodes(), p_locs).ValueOrDie();
  w->sites =
      NodePointSet::FromLocations(w->g.num_nodes(), q_locs).ValueOrDie();

  // Edge points on 10 distinct random edges.
  auto edges = w->g.CollectEdges();
  std::vector<EdgePosition> positions;
  for (uint64_t ei : rng.SampleWithoutReplacement(edges.size(), 10)) {
    const Edge& e = edges[ei];
    positions.push_back({e.u, e.v, rng.Uniform(0.0, e.w)});
  }
  w->edge_points = EdgePointSet::Create(w->g, positions).ValueOrDie();

  w->knn = MemoryKnnStore(w->g.num_nodes(), max_k + 1);
  EXPECT_TRUE(BuildAllNn(*w->view, w->points, &w->knn).ok());
  w->site_knn = MemoryKnnStore(w->g.num_nodes(), max_k + 1);
  EXPECT_TRUE(BuildAllNn(*w->view, w->sites, &w->site_knn).ok());
  w->edge_knn = MemoryKnnStore(w->g.num_nodes(), max_k + 1);
  EXPECT_TRUE(
      UnrestrictedBuildAllNn(*w->view, w->edge_points, &w->edge_knn).ok());
  return w;
}

// Engine serving the node-resident kinds (mono, bichromatic, continuous
// routes over P).
RknnEngine NodeEngine(EngineWorld& w) {
  EngineSources sources;
  sources.graph = &*w.view;
  sources.points = &w.points;
  sources.sites = &w.sites;
  sources.knn = &w.knn;
  sources.site_knn = &w.site_knn;
  return RknnEngine::Create(sources).ValueOrDie();
}

// Engine serving the unrestricted kinds (positions and routes over the
// edge-resident points).
RknnEngine EdgeEngine(EngineWorld& w) {
  EngineSources sources;
  sources.graph = &*w.view;
  sources.edge_points = &w.edge_points;
  sources.knn = &w.edge_knn;
  return RknnEngine::Create(sources).ValueOrDie();
}

// Builds a batch of specs of the given kind with mixed targets:
// queries at data points (paper workload, excluded from their own
// query) alternate with queries at arbitrary locations.
std::vector<QuerySpec> MakeSpecs(EngineWorld& w, QueryKind kind,
                                 Algorithm algo, int k, size_t count,
                                 Rng& rng) {
  std::vector<QuerySpec> specs;
  auto edges = w.g.CollectEdges();
  for (size_t i = 0; i < count; ++i) {
    QuerySpec spec;
    switch (kind) {
      case QueryKind::kMonochromatic: {
        if (i % 2 == 0) {
          auto live = w.points.LivePoints();
          PointId qp = live[rng.UniformInt(live.size())];
          spec = QuerySpec::Monochromatic(algo, w.points.NodeOf(qp), k,
                                          qp);
        } else {
          spec = QuerySpec::Monochromatic(
              algo, static_cast<NodeId>(rng.UniformInt(w.g.num_nodes())),
              k);
        }
        break;
      }
      case QueryKind::kBichromatic: {
        if (i % 2 == 0) {
          // "What if" at an existing site, competing against the rest.
          auto live = w.sites.LivePoints();
          PointId qs = live[rng.UniformInt(live.size())];
          spec = QuerySpec::Bichromatic(algo, w.sites.NodeOf(qs), k, qs);
        } else {
          spec = QuerySpec::Bichromatic(
              algo, static_cast<NodeId>(rng.UniformInt(w.g.num_nodes())),
              k);
        }
        break;
      }
      case QueryKind::kContinuous: {
        std::vector<NodeId> route;
        NodeId cur =
            static_cast<NodeId>(rng.UniformInt(w.g.num_nodes()));
        route.push_back(cur);
        for (int hop = 0; hop < 3; ++hop) {
          auto nbrs = w.g.Neighbors(cur);
          cur = nbrs[rng.UniformInt(nbrs.size())].node;
          route.push_back(cur);
        }
        spec = QuerySpec::Continuous(algo, std::move(route), k);
        break;
      }
      case QueryKind::kUnrestricted: {
        if (i % 2 == 0) {
          auto live = w.edge_points.LivePoints();
          PointId qp = live[rng.UniformInt(live.size())];
          spec = QuerySpec::Unrestricted(
              algo, w.edge_points.PositionOf(qp), k, qp);
        } else {
          const Edge& e = edges[rng.UniformInt(edges.size())];
          spec = QuerySpec::Unrestricted(
              algo, EdgePosition{e.u, e.v, rng.Uniform(0.0, e.w)}, k);
        }
        break;
      }
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

// ---------------------------------------------------------------------
// Matrix: every (kind x algorithm) agrees with the brute-force oracle.

class EngineMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<QueryKind, Algorithm, int, int>> {};

TEST_P(EngineMatrixTest, AgreesWithBruteForceOracle) {
  const auto [kind, algo, k, seed] = GetParam();
  auto w = MakeWorld(static_cast<uint64_t>(seed), /*max_k=*/3);
  RknnEngine engine = kind == QueryKind::kUnrestricted ? EdgeEngine(*w)
                                                       : NodeEngine(*w);

  Rng rng(static_cast<uint64_t>(seed) * 31 + 5);
  auto specs = MakeSpecs(*w, kind, algo, k, /*count=*/6, rng);
  for (size_t i = 0; i < specs.size(); ++i) {
    auto result = engine.Run(specs[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    QuerySpec oracle_spec = specs[i];
    oracle_spec.algorithm = Algorithm::kBruteForce;
    auto oracle = engine.Run(oracle_spec);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    EXPECT_EQ(Ids(*result), Ids(*oracle))
        << QueryKindName(kind) << "/" << AlgorithmName(algo) << " k=" << k
        << " seed=" << seed << " query=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllAlgorithms, EngineMatrixTest,
    ::testing::Combine(
        ::testing::ValuesIn(kAllQueryKinds),
        ::testing::ValuesIn(kAllAlgorithms),
        ::testing::Values(1, 2),
        ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(QueryKindName(std::get<0>(info.param))) + "_" +
             AlgorithmShortName(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// Routes over edge-resident points: kContinuous on an edge engine takes
// the unrestricted path and must match its oracle.
TEST(EngineTest, ContinuousOverEdgePointsMatchesOracle) {
  auto w = MakeWorld(9, 3);
  RknnEngine engine = EdgeEngine(*w);
  Rng rng(77);
  for (Algorithm algo : kAllAlgorithms) {
    auto specs =
        MakeSpecs(*w, QueryKind::kContinuous, algo, /*k=*/2, 4, rng);
    for (const QuerySpec& spec : specs) {
      auto result = engine.Run(spec);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      QuerySpec oracle_spec = spec;
      oracle_spec.algorithm = Algorithm::kBruteForce;
      auto oracle = engine.Run(oracle_spec).ValueOrDie();
      EXPECT_EQ(Ids(*result), Ids(oracle)) << AlgorithmName(algo);
    }
  }
}

// ---------------------------------------------------------------------
// Batched execution.

TEST(EngineBatchTest, BatchMatchesOneAtATime) {
  auto w = MakeWorld(4, 3);
  Rng rng(1234);

  // A mixed batch across kinds and algorithms on the node engine...
  std::vector<QuerySpec> specs;
  for (Algorithm algo : kAllAlgorithms) {
    for (QueryKind kind :
         {QueryKind::kMonochromatic, QueryKind::kBichromatic,
          QueryKind::kContinuous}) {
      auto part = MakeSpecs(*w, kind, algo, /*k=*/2, 10, rng);
      specs.insert(specs.end(), part.begin(), part.end());
    }
  }
  ASSERT_GE(specs.size(), 100u);

  RknnEngine batch_engine = NodeEngine(*w);
  auto batch = batch_engine.RunBatch(specs).ValueOrDie();
  ASSERT_EQ(batch.results.size(), specs.size());
  EXPECT_EQ(batch.stats.queries, specs.size());

  // ... must agree, result by result, with fresh one-at-a-time runs.
  RknnEngine single_engine = NodeEngine(*w);
  SearchStats sum;
  for (size_t i = 0; i < specs.size(); ++i) {
    auto single = single_engine.Run(specs[i]).ValueOrDie();
    EXPECT_EQ(batch.results[i].results, single.results) << "query " << i;
    sum += single.stats;
  }
  EXPECT_EQ(batch.stats.search.nodes_expanded, sum.nodes_expanded);
  EXPECT_EQ(batch.stats.search.verify_calls, sum.verify_calls);
}

TEST(EngineBatchTest, NoWorkspaceAllocationOnceWarm) {
  auto w = MakeWorld(6, 3);
  Rng rng(99);
  std::vector<QuerySpec> specs;
  for (Algorithm algo : kAllAlgorithms) {
    auto part =
        MakeSpecs(*w, QueryKind::kMonochromatic, algo, /*k=*/2, 25, rng);
    specs.insert(specs.end(), part.begin(), part.end());
  }
  ASSERT_GE(specs.size(), 100u);

  RknnEngine engine = NodeEngine(*w);
  // First pass warms the workspace to its high-water mark...
  auto warm = engine.RunBatch(specs).ValueOrDie();
  // ... after which re-running the identical >= 100-query batch must not
  // allocate any pooled buffer again.
  auto second = engine.RunBatch(specs).ValueOrDie();
  EXPECT_EQ(second.stats.workspace_grows, 0u)
      << "warm batch reallocated workspace buffers (first pass grew "
      << warm.stats.workspace_grows << " times)";
  EXPECT_EQ(second.stats.queries, specs.size());
}

TEST(EngineBatchTest, UnrestrictedBatchNoAllocationOnceWarm) {
  auto w = MakeWorld(8, 3);
  Rng rng(5);
  std::vector<QuerySpec> specs;
  for (Algorithm algo : kAllAlgorithms) {
    auto part =
        MakeSpecs(*w, QueryKind::kUnrestricted, algo, /*k=*/2, 25, rng);
    specs.insert(specs.end(), part.begin(), part.end());
  }
  RknnEngine engine = EdgeEngine(*w);
  (void)engine.RunBatch(specs).ValueOrDie();
  auto second = engine.RunBatch(specs).ValueOrDie();
  EXPECT_EQ(second.stats.workspace_grows, 0u);
}

TEST(EngineBatchTest, WorkspaceReuseDoesNotLeakStateBetweenQueries) {
  auto w = MakeWorld(3, 3);
  RknnEngine engine = NodeEngine(*w);

  // Alternating queries with different k, exclusions and kinds, each
  // repeated: a reused workspace must give identical answers every time.
  auto live = w->points.LivePoints();
  const NodeId a = w->points.NodeOf(live[0]);
  const NodeId b = w->points.NodeOf(live[1]);
  std::vector<QuerySpec> alternating;
  for (int rep = 0; rep < 5; ++rep) {
    alternating.push_back(QuerySpec::Monochromatic(
        Algorithm::kLazy, a, /*k=*/1, live[0]));
    alternating.push_back(QuerySpec::Monochromatic(
        Algorithm::kLazy, b, /*k=*/3, live[1]));
    alternating.push_back(
        QuerySpec::Bichromatic(Algorithm::kLazyEp, a, /*k=*/2));
  }
  auto batch = engine.RunBatch(alternating).ValueOrDie();
  for (int rep = 1; rep < 5; ++rep) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(batch.results[3 * rep + j].results,
                batch.results[j].results)
          << "repetition " << rep << " slot " << j
          << " diverged from its first occurrence";
    }
  }
}

// ---------------------------------------------------------------------
// Parallel batched execution (the full randomized matrix lives in
// differential_test.cc; these are the fast tier-1 regressions).

TEST(EngineParallelTest, ParallelBatchMatchesSerialBitForBit) {
  auto w = MakeWorld(5, 3);
  Rng rng(4242);
  std::vector<QuerySpec> specs;
  for (Algorithm algo : kAllAlgorithms) {
    for (QueryKind kind :
         {QueryKind::kMonochromatic, QueryKind::kBichromatic,
          QueryKind::kContinuous}) {
      auto part = MakeSpecs(*w, kind, algo, /*k=*/2, 8, rng);
      specs.insert(specs.end(), part.begin(), part.end());
    }
  }

  RknnEngine engine = NodeEngine(*w);
  auto serial = engine.RunBatch(specs).ValueOrDie();
  auto parallel =
      engine.RunBatch(specs, ParallelOptions{4, 5}).ValueOrDie();
  ASSERT_EQ(parallel.results.size(), serial.results.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(parallel.results[i].results, serial.results[i].results)
        << "query " << i;
  }
  // Per-thread SearchStats/IoStats roll up to the same batch totals.
  EXPECT_EQ(parallel.stats.queries, serial.stats.queries);
  EXPECT_EQ(parallel.stats.search.nodes_expanded,
            serial.stats.search.nodes_expanded);
  EXPECT_EQ(parallel.stats.search.verify_calls,
            serial.stats.search.verify_calls);
  EXPECT_EQ(parallel.stats.search.heap_pushes,
            serial.stats.search.heap_pushes);
}

TEST(EngineParallelTest, WarmParallelBatchReportsZeroGrowsOnEveryWorker) {
  auto w = MakeWorld(7, 3);
  Rng rng(11);
  std::vector<QuerySpec> specs;
  for (Algorithm algo : kAllAlgorithms) {
    auto part =
        MakeSpecs(*w, QueryKind::kMonochromatic, algo, /*k=*/2, 30, rng);
    specs.insert(specs.end(), part.begin(), part.end());
  }
  ASSERT_GE(specs.size(), 100u);

  const ParallelOptions par{4, 8};
  RknnEngine engine = NodeEngine(*w);
  // The first parallel batch creates one workspace per worker...
  auto warm = engine.RunBatch(specs, par).ValueOrDie();
  ASSERT_EQ(engine.num_pooled_workspaces(), 4u);
  // ... and four serial passes rotate the FIFO pool so EVERY pooled
  // workspace processes the full workload, reaching its high-water mark
  // (chunk scheduling is dynamic, so one parallel pass alone does not
  // guarantee that).
  for (int pass = 0; pass < 4; ++pass) {
    ASSERT_TRUE(engine.RunBatch(specs).ok());
  }
  // A warm parallel batch must now report zero grows — summed over
  // workers, so zero means zero on EVERY worker.
  auto second = engine.RunBatch(specs, par).ValueOrDie();
  EXPECT_EQ(second.stats.workspace_grows, 0u)
      << "warm parallel batch reallocated workspace buffers (first pass "
      << "grew " << warm.stats.workspace_grows << " times)";
  EXPECT_EQ(second.stats.queries, specs.size());
  // The workspace pool did not balloon: the same leases were reused.
  EXPECT_EQ(engine.num_pooled_workspaces(), 4u);
}

TEST(EngineParallelTest, ParallelBatchReportsLowestIndexError) {
  auto w = MakeWorld(2, 1);
  RknnEngine engine = NodeEngine(*w);
  std::vector<QuerySpec> specs;
  for (int i = 0; i < 40; ++i) {
    specs.push_back(QuerySpec::Monochromatic(
        Algorithm::kEager, static_cast<NodeId>(i % 10)));
  }
  specs[17].k = 0;  // invalid
  auto serial = engine.RunBatch(specs);
  ASSERT_FALSE(serial.ok());
  auto parallel = engine.RunBatch(specs, ParallelOptions{4, 2});
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), serial.status().code());
  EXPECT_EQ(parallel.status().message(), serial.status().message());
}

TEST(EngineParallelTest, SingleThreadAndTinyBatchesFallBackToSerial) {
  auto w = MakeWorld(3, 2);
  RknnEngine engine = NodeEngine(*w);
  std::vector<QuerySpec> specs{
      QuerySpec::Monochromatic(Algorithm::kEager, 0),
      QuerySpec::Monochromatic(Algorithm::kLazy, 1)};
  // num_threads=1 and a batch smaller than one chunk both take the
  // serial path; results must still be well-formed.
  auto one = engine.RunBatch(specs, ParallelOptions{1, 16}).ValueOrDie();
  auto tiny = engine.RunBatch(specs, ParallelOptions{8, 16}).ValueOrDie();
  ASSERT_EQ(one.results.size(), 2u);
  ASSERT_EQ(tiny.results.size(), 2u);
  EXPECT_EQ(one.results[0].results, tiny.results[0].results);
  EXPECT_EQ(one.results[1].results, tiny.results[1].results);

  // An empty batch is a no-op on every path.
  auto empty =
      engine.RunBatch(std::span<const QuerySpec>{}, ParallelOptions{8, 4})
          .ValueOrDie();
  EXPECT_TRUE(empty.results.empty());
  EXPECT_EQ(empty.stats.queries, 0u);
}

TEST(EngineParallelTest, NegativeThreadCountFallsBackToSerial) {
  auto w = MakeWorld(4, 2);
  RknnEngine engine = NodeEngine(*w);
  Rng rng(8);
  auto specs =
      MakeSpecs(*w, QueryKind::kMonochromatic, Algorithm::kEager, 2, 12,
                rng);
  // A nonsense negative thread count must behave exactly like serial
  // (not spawn one worker per chunk via an unsigned wraparound).
  auto batch = engine.RunBatch(specs, ParallelOptions{-3, 2}).ValueOrDie();
  EXPECT_EQ(batch.stats.queries, specs.size());
  // Serial execution leases exactly one workspace.
  EXPECT_EQ(engine.num_pooled_workspaces(), 1u);
}

TEST(EngineParallelTest, NarrowBatchAfterWideBatchHonoursItsThreadCount) {
  auto w = MakeWorld(6, 2);
  RknnEngine engine = NodeEngine(*w);
  Rng rng(9);
  auto specs =
      MakeSpecs(*w, QueryKind::kMonochromatic, Algorithm::kLazy, 2, 32,
                rng);
  // A wide batch grows the persistent worker team (and pool) to 8...
  auto wide = engine.RunBatch(specs, ParallelOptions{8, 2}).ValueOrDie();
  ASSERT_EQ(engine.num_pooled_workspaces(), 8u);
  // ... but a later 2-thread batch must only lease 2 workspaces (the
  // extra team members sit the job out), and still match serially.
  auto narrow = engine.RunBatch(specs, ParallelOptions{2, 2}).ValueOrDie();
  EXPECT_EQ(engine.num_pooled_workspaces(), 8u);
  ASSERT_EQ(narrow.results.size(), wide.results.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(narrow.results[i].results, wide.results[i].results);
  }
  EXPECT_EQ(narrow.stats.queries, specs.size());
}

// ---------------------------------------------------------------------
// Validation and error paths.

TEST(EngineTest, CreateValidatesSources) {
  EngineSources empty;
  EXPECT_FALSE(RknnEngine::Create(empty).ok());

  auto w = MakeWorld(1, 1);
  EngineSources no_points;
  no_points.graph = &*w->view;
  EXPECT_FALSE(RknnEngine::Create(no_points).ok());
}

TEST(EngineTest, MissingSourcesAreReported) {
  auto w = MakeWorld(1, 1);

  // A node engine without sites rejects bichromatic queries...
  EngineSources sources;
  sources.graph = &*w->view;
  sources.points = &w->points;
  auto engine = RknnEngine::Create(sources).ValueOrDie();
  EXPECT_FALSE(
      engine.Run(QuerySpec::Bichromatic(Algorithm::kEager, 0)).ok());
  // ... and unrestricted ones.
  auto pos = w->edge_points.PositionOf(0);
  EXPECT_FALSE(
      engine.Run(QuerySpec::Unrestricted(Algorithm::kEager, pos)).ok());
  // Eager-M without a store is rejected, other algorithms work.
  EXPECT_FALSE(
      engine.Run(QuerySpec::Monochromatic(Algorithm::kEagerM, 0)).ok());
  EXPECT_TRUE(
      engine.Run(QuerySpec::Monochromatic(Algorithm::kEager, 0)).ok());
}

TEST(EngineTest, RejectsMalformedSpecs) {
  auto w = MakeWorld(2, 1);
  RknnEngine engine = NodeEngine(*w);

  QuerySpec two_nodes = QuerySpec::Monochromatic(Algorithm::kEager, 0);
  two_nodes.query_nodes.push_back(1);
  EXPECT_FALSE(engine.Run(two_nodes).ok());

  EXPECT_FALSE(
      engine.Run(QuerySpec::Monochromatic(Algorithm::kEager, 0, 0)).ok());

  QuerySpec empty_route =
      QuerySpec::Continuous(Algorithm::kEager, {});
  EXPECT_FALSE(engine.Run(empty_route).ok());
}

TEST(EngineTest, BatchAbortsOnFirstError) {
  auto w = MakeWorld(2, 1);
  RknnEngine engine = NodeEngine(*w);
  std::vector<QuerySpec> specs{
      QuerySpec::Monochromatic(Algorithm::kEager, 0),
      QuerySpec::Monochromatic(Algorithm::kEager, 1, /*k=*/0),  // invalid
      QuerySpec::Monochromatic(Algorithm::kEager, 2)};
  EXPECT_FALSE(engine.RunBatch(specs).ok());
}

TEST(EngineTest, LifetimeStatsAccumulate) {
  auto w = MakeWorld(2, 1);
  RknnEngine engine = NodeEngine(*w);
  ASSERT_TRUE(
      engine.Run(QuerySpec::Monochromatic(Algorithm::kEager, 0)).ok());
  std::vector<QuerySpec> specs{
      QuerySpec::Monochromatic(Algorithm::kLazy, 1),
      QuerySpec::Monochromatic(Algorithm::kLazy, 2)};
  ASSERT_TRUE(engine.RunBatch(specs).ok());
  EXPECT_EQ(engine.lifetime_stats().queries, 3u);
  EXPECT_GT(engine.lifetime_stats().search.nodes_scanned, 0u);
}

TEST(EngineTest, QueryKindNames) {
  EXPECT_STREQ(QueryKindName(QueryKind::kMonochromatic), "monochromatic");
  EXPECT_STREQ(QueryKindName(QueryKind::kBichromatic), "bichromatic");
  EXPECT_STREQ(QueryKindName(QueryKind::kContinuous), "continuous");
  EXPECT_STREQ(QueryKindName(QueryKind::kUnrestricted), "unrestricted");
}

// ---------------------------------------------------------------------
// Algorithm::kHubLabel: the label-backed index path (PR 5).

// Node engine with a hub-label index attached (and optionally the
// update sinks, for the staleness tests).
RknnEngine HubNodeEngine(EngineWorld& w,
                         const index::LabelStore& labels,
                         bool updatable = false) {
  EngineSources sources;
  sources.graph = &*w.view;
  sources.points = &w.points;
  sources.sites = &w.sites;
  sources.knn = &w.knn;
  sources.site_knn = &w.site_knn;
  sources.hub_labels = &labels;
  if (updatable) {
    sources.updates.points = &w.points;
    sources.updates.sites = &w.sites;
    sources.updates.knn = &w.knn;
    sources.updates.site_knn = &w.site_knn;
  }
  return RknnEngine::Create(sources).ValueOrDie();
}

// Edge engine with the hub-label index attached (and optionally the
// update sinks).
RknnEngine HubEdgeEngine(EngineWorld& w,
                         const index::LabelStore& labels,
                         bool updatable = false) {
  EngineSources sources;
  sources.graph = &*w.view;
  sources.edge_points = &w.edge_points;
  sources.knn = &w.edge_knn;
  sources.hub_labels = &labels;
  if (updatable) {
    sources.updates.edge_points = &w.edge_points;
    sources.updates.knn = &w.edge_knn;
    sources.updates.base_graph = &w.g;
  }
  return RknnEngine::Create(sources).ValueOrDie();
}

TEST(EngineHubTest, HubMatchesOracleOnAllFourKinds) {
  auto w = MakeWorld(21, 3);
  auto labels = index::HubLabelBuilder::Build(*w->view).ValueOrDie();
  RknnEngine node_engine = HubNodeEngine(*w, labels);
  RknnEngine edge_engine = HubEdgeEngine(*w, labels);
  Rng rng(99);
  for (QueryKind kind :
       {QueryKind::kMonochromatic, QueryKind::kBichromatic,
        QueryKind::kContinuous, QueryKind::kUnrestricted}) {
    // Routes over node points go to the node engine; positions (and
    // routes over edge points) to the edge engine.
    RknnEngine& engine =
        kind == QueryKind::kUnrestricted ? edge_engine : node_engine;
    for (int k = 1; k <= 3; ++k) {
      auto specs =
          MakeSpecs(*w, kind, Algorithm::kHubLabel, k, 8, rng);
      for (QuerySpec spec : specs) {
        auto hub = engine.Run(spec);
        ASSERT_TRUE(hub.ok()) << hub.status().ToString();
        EXPECT_EQ(hub->stats.hub_fallbacks, 0u);
        spec.algorithm = Algorithm::kBruteForce;
        auto oracle = engine.Run(spec);
        ASSERT_TRUE(oracle.ok());
        EXPECT_EQ(Ids(*hub), Ids(*oracle))
            << QueryKindName(kind) << " k=" << k;
      }
    }
  }
  // Routes over EDGE points take the label path too (continuous on an
  // edge engine dispatches as an unrestricted route query).
  for (int k = 1; k <= 3; ++k) {
    auto specs = MakeSpecs(*w, QueryKind::kContinuous,
                           Algorithm::kHubLabel, k, 6, rng);
    for (QuerySpec spec : specs) {
      auto hub = edge_engine.Run(spec);
      ASSERT_TRUE(hub.ok()) << hub.status().ToString();
      EXPECT_EQ(hub->stats.hub_fallbacks, 0u);
      EXPECT_GT(hub->stats.label_entries, 0u);
      spec.algorithm = Algorithm::kBruteForce;
      auto oracle = edge_engine.Run(spec);
      ASSERT_TRUE(oracle.ok());
      EXPECT_EQ(Ids(*hub), Ids(*oracle)) << "edge route k=" << k;
    }
  }
}

TEST(EngineHubTest, HubWithoutIndexIsRejected) {
  auto w = MakeWorld(23, 3);
  RknnEngine engine = NodeEngine(*w);
  auto r = engine.Run(
      QuerySpec::Monochromatic(Algorithm::kHubLabel, 0));
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(engine.hub_index_stale());
  EXPECT_EQ(engine.RebuildIndex().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineHubTest, CreateRejectsMismatchedLabelUniverse) {
  auto w = MakeWorld(24, 3);
  Rng rng(5);
  auto small = RandomConnectedGraph(5, 0.5, rng);
  graph::GraphView small_view(&small);
  auto labels = index::HubLabelBuilder::Build(small_view).ValueOrDie();
  EngineSources sources;
  sources.graph = &*w->view;
  sources.points = &w->points;
  sources.hub_labels = &labels;
  EXPECT_FALSE(RknnEngine::Create(sources).ok());
}

TEST(EngineHubTest, UpdatesMaintainIndexIncrementally) {
  auto w = MakeWorld(25, 3);
  auto labels = index::HubLabelBuilder::Build(*w->view).ValueOrDie();
  RknnEngine engine = HubNodeEngine(*w, labels, /*updatable=*/true);
  ASSERT_FALSE(engine.hub_index_stale());

  auto live = w->points.LivePoints();
  const PointId qp = live[0];
  const QuerySpec hub_spec = QuerySpec::Monochromatic(
      Algorithm::kHubLabel, w->points.NodeOf(qp), 2, qp);
  QuerySpec oracle_spec = hub_spec;
  oracle_spec.algorithm = Algorithm::kBruteForce;

  auto before = engine.Run(hub_spec);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->stats.hub_fallbacks, 0u);

  // A points update splices the new point into the derived index under
  // the update's own exclusive section: the label path never goes dark.
  NodeId free = kInvalidNode;
  for (NodeId n = 0; n < w->g.num_nodes(); ++n) {
    if (!w->points.Contains(n) && !w->sites.Contains(n)) {
      free = n;
      break;
    }
  }
  ASSERT_NE(free, kInvalidNode);
  auto ins = engine.ApplyUpdate(UpdateSpec::InsertPoint(free));
  ASSERT_TRUE(ins.ok());
  EXPECT_FALSE(engine.hub_index_stale());

  auto during = engine.Run(hub_spec);
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during->stats.hub_fallbacks, 0u);
  EXPECT_GT(during->stats.label_entries, 0u);
  auto oracle = engine.Run(oracle_spec);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(Ids(*during), Ids(*oracle));

  // Deletes splice back out; still exact, still no fallback.
  ASSERT_TRUE(
      engine.ApplyUpdate(UpdateSpec::DeletePoint(ins->point)).ok());
  EXPECT_FALSE(engine.hub_index_stale());
  auto deleted = engine.Run(hub_spec);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->stats.hub_fallbacks, 0u);
  auto deleted_oracle = engine.Run(oracle_spec);
  ASSERT_TRUE(deleted_oracle.ok());
  EXPECT_EQ(Ids(*deleted), Ids(*deleted_oracle));

  // Site updates are maintained too (bichromatic shares the machinery).
  ASSERT_TRUE(engine.ApplyUpdate(UpdateSpec::InsertSite(free)).ok());
  EXPECT_FALSE(engine.hub_index_stale());
  auto bi = engine.Run(
      QuerySpec::Bichromatic(Algorithm::kHubLabel, free, 2));
  ASSERT_TRUE(bi.ok());
  EXPECT_EQ(bi->stats.hub_fallbacks, 0u);
  auto bi_oracle = engine.Run(
      QuerySpec::Bichromatic(Algorithm::kBruteForce, free, 2));
  ASSERT_TRUE(bi_oracle.ok());
  EXPECT_EQ(Ids(*bi), Ids(*bi_oracle));

  // RebuildIndex is now a consistency check, not a requirement: it
  // must keep answers identical to the incrementally patched index.
  ASSERT_TRUE(engine.RebuildIndex().ok());
  EXPECT_FALSE(engine.hub_index_stale());
  auto after = engine.Run(hub_spec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stats.hub_fallbacks, 0u);
  EXPECT_EQ(after->results, deleted->results);
}

TEST(EngineHubTest, EdgeUpdatesMaintainIndexIncrementally) {
  auto w = MakeWorld(27, 3);
  auto labels = index::HubLabelBuilder::Build(*w->view).ValueOrDie();
  RknnEngine engine = HubEdgeEngine(*w, labels, /*updatable=*/true);
  ASSERT_FALSE(engine.hub_index_stale());

  auto live = w->edge_points.LivePoints();
  const QuerySpec hub_spec = QuerySpec::Unrestricted(
      Algorithm::kHubLabel, w->edge_points.PositionOf(live[0]), 2,
      live[0]);
  QuerySpec oracle_spec = hub_spec;
  oracle_spec.algorithm = Algorithm::kBruteForce;

  // Insert an edge point, query through labels, delete it again — the
  // edge-resident index must track every step without fallback.
  auto edges = w->g.CollectEdges();
  const Edge& e = edges[edges.size() / 2];
  auto ins = engine.ApplyUpdate(
      UpdateSpec::InsertEdgePoint(EdgePosition{e.u, e.v, e.w / 3}));
  ASSERT_TRUE(ins.ok());
  EXPECT_FALSE(engine.hub_index_stale());
  auto during = engine.Run(hub_spec);
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during->stats.hub_fallbacks, 0u);
  EXPECT_GT(during->stats.label_entries, 0u);
  auto oracle = engine.Run(oracle_spec);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(Ids(*during), Ids(*oracle));

  ASSERT_TRUE(
      engine.ApplyUpdate(UpdateSpec::DeleteEdgePoint(ins->point)).ok());
  EXPECT_FALSE(engine.hub_index_stale());
  auto deleted = engine.Run(hub_spec);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->stats.hub_fallbacks, 0u);
  auto deleted_oracle = engine.Run(oracle_spec);
  ASSERT_TRUE(deleted_oracle.ok());
  EXPECT_EQ(Ids(*deleted), Ids(*deleted_oracle));

  ASSERT_TRUE(engine.RebuildIndex().ok());
  auto after = engine.Run(hub_spec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->results, deleted->results);
}

// LabelStore wrapper that fails Scans of one chosen node — the only
// handle an external test has on the structural-failure staleness path
// (a healthy engine never trips it).
class FailingLabelStore final : public index::LabelStore {
 public:
  explicit FailingLabelStore(const index::LabelStore* base)
      : base_(base) {}
  NodeId num_nodes() const override { return base_->num_nodes(); }
  size_t num_entries() const override { return base_->num_entries(); }
  Result<std::span<const index::HubEntry>> Scan(
      NodeId n, index::LabelCursor& cursor) const override {
    if (n == fail_node_) {
      return Status::Internal("injected label scan failure");
    }
    return base_->Scan(n, cursor);
  }
  void set_fail_node(NodeId n) { fail_node_ = n; }

 private:
  const index::LabelStore* base_;
  NodeId fail_node_ = kInvalidNode;
};

TEST(EngineHubTest, StructuralPatchFailureFallsBackAndAccumulates) {
  auto w = MakeWorld(25, 3);
  auto labels = index::HubLabelBuilder::Build(*w->view).ValueOrDie();
  FailingLabelStore flaky(&labels);
  RknnEngine engine = HubNodeEngine(*w, flaky, /*updatable=*/true);
  ASSERT_FALSE(engine.hub_index_stale());

  NodeId free = kInvalidNode;
  for (NodeId n = 0; n < w->g.num_nodes(); ++n) {
    if (!w->points.Contains(n) && !w->sites.Contains(n)) {
      free = n;
      break;
    }
  }
  ASSERT_NE(free, kInvalidNode);
  // The update itself succeeds; the incremental patch cannot scan the
  // new point's label, so the index goes (rarely, structurally) stale.
  flaky.set_fail_node(free);
  ASSERT_TRUE(engine.ApplyUpdate(UpdateSpec::InsertPoint(free)).ok());
  EXPECT_TRUE(engine.hub_index_stale());

  // While stale, every hub query falls back — and the counter
  // ACCUMULATES across a batch (one increment per falling-back query).
  std::vector<QuerySpec> specs{
      QuerySpec::Monochromatic(Algorithm::kHubLabel, 0, 2),
      QuerySpec::Monochromatic(Algorithm::kHubLabel, 1, 2),
      QuerySpec::Bichromatic(Algorithm::kHubLabel, 2, 2)};
  auto batch = engine.RunBatch(specs);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->stats.search.hub_fallbacks, specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    QuerySpec oracle_spec = specs[i];
    oracle_spec.algorithm = Algorithm::kBruteForce;
    auto oracle = engine.Run(oracle_spec);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(Ids(batch->results[i]), Ids(*oracle)) << "spec=" << i;
  }

  // Heal the store; RebuildIndex restores the label path.
  flaky.set_fail_node(kInvalidNode);
  ASSERT_TRUE(engine.RebuildIndex().ok());
  EXPECT_FALSE(engine.hub_index_stale());
  auto after = engine.RunBatch(specs);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stats.search.hub_fallbacks, 0u);
}

TEST(EngineHubTest, ParseAndNamesIncludeHub) {
  EXPECT_EQ(ParseAlgorithm("hub").ValueOrDie(), Algorithm::kHubLabel);
  EXPECT_EQ(ParseAlgorithm("H").ValueOrDie(), Algorithm::kHubLabel);
  EXPECT_EQ(ParseAlgorithm("hub-label").ValueOrDie(),
            Algorithm::kHubLabel);
  EXPECT_STREQ(AlgorithmName(Algorithm::kHubLabel), "hub");
  EXPECT_STREQ(AlgorithmShortName(Algorithm::kHubLabel), "H");
}

}  // namespace
}  // namespace grnn::core
