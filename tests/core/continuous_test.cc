// Continuous RkNN queries over routes (paper Section 5.1): all algorithms
// accept multi-node query sets, with d(r, n) = min over route nodes.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/eager.h"
#include "core/lazy.h"
#include "core/lazy_ep.h"
#include "core/materialize.h"
#include "core/workspace.h"
#include "graph/network_view.h"
#include "test_fixtures.h"

namespace grnn::core {
namespace {

using testfix::Ids;
using testfix::PaperExample;
using testfix::RandomConnectedGraph;
using testfix::RandomPoints;

// Builds a random walk without repeated nodes (the paper's route model).
std::vector<NodeId> RandomWalkRoute(const graph::Graph& g, NodeId start,
                                    size_t length, Rng& rng) {
  std::vector<NodeId> route{start};
  std::vector<bool> used(g.num_nodes(), false);
  used[start] = true;
  NodeId cur = start;
  while (route.size() < length) {
    auto nbrs = g.Neighbors(cur);
    std::vector<NodeId> options;
    for (const AdjEntry& a : nbrs) {
      if (!used[a.node]) {
        options.push_back(a.node);
      }
    }
    if (options.empty()) {
      break;
    }
    cur = options[rng.UniformInt(options.size())];
    used[cur] = true;
    route.push_back(cur);
  }
  return route;
}

TEST(ContinuousTest, RouteCoveringPointNodesReturnsThem) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  // Route through n4-n3-n6 (ids 3, 2, 5): p0 on n6 is at distance 0.
  std::vector<NodeId> route{3, 2, 5};
  SearchWorkspace ws;
  auto r = EagerRknn(view, f.points, route, RknnOptions{}, ws).ValueOrDie();
  // p0@5: d=0, trivially a result. p1@4: d(r,p1)=min(8,?..)
  //   via n3: d(n3=2, n5=4)? 2-3-0-4: 4+5+3 = 12; via q=3: 8; via 5:
  //   5-1-4: 4+5 = 9 -> 8. Competitor p0: d(p1,p0) = 9 ... wait
  //   d(p0@5,p1@4): 5-1-4 = 4+5 = 9 > 8 -> p1 in.
  // p2@6: d(r,p2) = min(9, 5, 13) = 5 (via n3 at distance... n3=2 to
  //   n7=6 edge w=5 -> 5). d(p2, p0) = 8, d(p2, p1) = 17 -> 5 < 8: in.
  EXPECT_EQ(Ids(r), (std::vector<PointId>{0, 1, 2}));
  // Distances are exact route distances.
  EXPECT_DOUBLE_EQ(r.results[0].dist, 0.0);
  EXPECT_DOUBLE_EQ(r.results[1].dist, 8.0);
  EXPECT_DOUBLE_EQ(r.results[2].dist, 5.0);
}

TEST(ContinuousTest, SingleNodeRouteEqualsPointQuery) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  SearchWorkspace ws;
  auto point_q =
      EagerRknn(view, f.points, std::vector<NodeId>{3}, RknnOptions{}, ws)
          .ValueOrDie();
  auto route_q = EagerRknn(view, f.points, std::vector<NodeId>{3, 3},
                           RknnOptions{}, ws)
                     .ValueOrDie();
  EXPECT_EQ(Ids(point_q), Ids(route_q));
}

TEST(ContinuousTest, LongerRoutesNeverShrinkResults) {
  // cRkNN(r) = union over RkNN(n_i): prefixes give subsets.
  Rng rng(31);
  auto g = RandomConnectedGraph(80, 1.5, rng);
  auto points = RandomPoints(g.num_nodes(), 16, rng);
  graph::GraphView view(&g);
  auto route = RandomWalkRoute(
      g, static_cast<NodeId>(rng.UniformInt(g.num_nodes())), 12, rng);
  SearchWorkspace ws;
  std::vector<PointId> prev;
  for (size_t len = 1; len <= route.size(); ++len) {
    std::vector<NodeId> prefix(route.begin(),
                               route.begin() + static_cast<long>(len));
    auto r =
        EagerRknn(view, points, prefix, RknnOptions{}, ws).ValueOrDie();
    auto ids = Ids(r);
    for (PointId p : prev) {
      EXPECT_TRUE(std::find(ids.begin(), ids.end(), p) != ids.end())
          << "len=" << len;
    }
    prev = ids;
  }
}

class ContinuousSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ContinuousSweep, AllAlgorithmsMatchBruteForceOnRoutes) {
  const auto [route_len, k, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 31337 + 11);
  auto g = RandomConnectedGraph(90, 1.5, rng);
  auto points = RandomPoints(g.num_nodes(), 15, rng);
  graph::GraphView view(&g);
  MemoryKnnStore store(g.num_nodes(), static_cast<uint32_t>(k) + 1);
  ASSERT_TRUE(BuildAllNn(view, points, &store).ok());
  SearchWorkspace ws;

  for (int trial = 0; trial < 3; ++trial) {
    auto route = RandomWalkRoute(
        g, static_cast<NodeId>(rng.UniformInt(g.num_nodes())),
        static_cast<size_t>(route_len), rng);
    RknnOptions opts;
    opts.k = k;

    auto truth = BruteForceRknn(view, points, route, opts).ValueOrDie();
    auto eager = EagerRknn(view, points, route, opts, ws).ValueOrDie();
    auto lazy = LazyRknn(view, points, route, opts, ws).ValueOrDie();
    auto lazy_ep = LazyEpRknn(view, points, route, opts, ws).ValueOrDie();
    auto eager_m =
        EagerMRknn(view, points, &store, route, opts, ws).ValueOrDie();

    EXPECT_EQ(Ids(eager), Ids(truth)) << "eager route len " << route_len;
    EXPECT_EQ(Ids(lazy), Ids(truth)) << "lazy route len " << route_len;
    EXPECT_EQ(Ids(lazy_ep), Ids(truth)) << "lazy-EP len " << route_len;
    EXPECT_EQ(Ids(eager_m), Ids(truth)) << "eager-M len " << route_len;
  }
}

INSTANTIATE_TEST_SUITE_P(Routes, ContinuousSweep,
                         ::testing::Combine(::testing::Values(2, 5, 15),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace grnn::core
