// Engine-level telemetry integration: one registry Snapshot() exposes
// engine, buffer-pool, epoch and scheduler counters together; a forced
// slow query retains a well-formed span tree with hub-label sweep/verify
// and page-access children; explicit QuerySpec::trace arms tracing
// without any sampling policy and closes the tree on error paths; and
// the EngineStats aggregation covers every field (guarded by sizeof
// asserts so new counters force this test to learn about them).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "index/hub_label.h"
#include "index/label_file.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/scheduler.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_fixtures.h"

namespace grnn::core {
namespace {

using testfix::PaperExample;

// The paper's running example served through stored labels: hub-label
// queries sweep LabelFile pages through the buffer pool, so one query
// exercises engine + index + storage in a handful of microseconds.
struct StoredWorld {
  testfix::Fixture f;
  std::optional<graph::GraphView> view;
  std::optional<index::HubLabelIndex> labels;
  std::unique_ptr<storage::MemoryDiskManager> disk;
  std::unique_ptr<index::LabelFile> file;
  std::unique_ptr<storage::BufferPool> pool;
  std::optional<index::StoredLabelIndex> stored;
};

std::unique_ptr<StoredWorld> MakeStoredWorld() {
  auto w = std::make_unique<StoredWorld>();
  w->f = PaperExample();
  w->view.emplace(&w->f.g);
  w->labels.emplace(index::HubLabelBuilder::Build(*w->view).ValueOrDie());
  w->disk = std::make_unique<storage::MemoryDiskManager>(512);
  auto built = index::LabelFile::Build(*w->labels, w->disk.get()).ValueOrDie();
  w->file = std::make_unique<index::LabelFile>(
      index::LabelFile::Open(w->disk.get(), built.first_page()).ValueOrDie());
  w->pool = std::make_unique<storage::BufferPool>(w->disk.get(), 64);
  w->stored.emplace(w->file.get(), w->pool.get());
  return w;
}

bool HasCounter(const obs::MetricsSnapshot& snap, const std::string& name) {
  return std::find_if(snap.counters.begin(), snap.counters.end(),
                      [&](const auto& kv) { return kv.first == name; }) !=
         snap.counters.end();
}

bool HasGauge(const obs::MetricsSnapshot& snap, const std::string& name) {
  return std::find_if(snap.gauges.begin(), snap.gauges.end(),
                      [&](const auto& kv) { return kv.first == name; }) !=
         snap.gauges.end();
}

// The tentpole's acceptance shape: engine counters, per-shard pool I/O,
// epoch gauges and scheduler stats all land in ONE Snapshot() of ONE
// registry, and consecutive snapshots are monotone.
TEST(TelemetryEngineTest, OneSnapshotSeesEveryLayer) {
  auto w = MakeStoredWorld();
  obs::MetricsRegistry registry;

  EngineSources sources;
  sources.graph = &*w->view;
  sources.points = &w->f.points;
  sources.hub_labels = &*w->stored;
  sources.pool = w->pool.get();
  sources.metrics = &registry;
  sources.trace.sample_every = 1;  // every query traced
  RknnEngine engine = RknnEngine::Create(sources).ValueOrDie();

  obs::MetricsSnapshot snap1;
  obs::MetricsSnapshot snap2;
  {
    serve::SchedulerOptions sopts;
    sopts.metrics = &registry;
    serve::Scheduler sched(&engine, sopts);
    std::vector<serve::Scheduler::Ticket> tickets;
    for (int i = 0; i < 8; ++i) {
      tickets.push_back(sched.Submit(QuerySpec::Monochromatic(
          Algorithm::kHubLabel, w->f.query_node, 1)));
    }
    for (const auto& t : tickets) {
      ASSERT_TRUE(t.Wait().result.ok());
    }
    snap1 = registry.Snapshot();
    auto direct = engine.Run(
        QuerySpec::Monochromatic(Algorithm::kEager, w->f.query_node, 1));
    ASSERT_TRUE(direct.ok());
    // Scheduler counters unregister at Shutdown: snapshot while live.
    snap2 = registry.Snapshot();
  }

  // Engine layer: query + search counters moved.
  EXPECT_GE(snap2.CounterValue("engine.queries"), 9u);
  EXPECT_GT(snap2.CounterValue("engine.search.label_entries"), 0u);
  EXPECT_GT(snap2.CounterValue("engine.trace.sampled"), 0u);
  // Storage layer: the label sweep went through the pool, per-shard
  // breakdown included.
  EXPECT_GT(snap2.CounterValue("pool.logical_reads"), 0u);
  EXPECT_TRUE(HasCounter(snap2, "pool.shard0.logical_reads"));
  EXPECT_TRUE(HasGauge(snap2, "pool.pinned_frames"));
  // Epoch layer: gauges exported even in lock mode (all-zero there).
  EXPECT_TRUE(HasCounter(snap2, "engine.epoch.pins"));
  EXPECT_TRUE(HasGauge(snap2, "engine.epoch.limbo"));
  // Serve layer: scheduler counters + latency histogram.
  EXPECT_GE(snap2.CounterValue("scheduler.submitted"), 8u);
  EXPECT_GE(snap2.CounterValue("scheduler.completed"), 8u);
  const obs::HistogramSummary* lat =
      snap2.FindHistogram("scheduler.latency_micros");
  ASSERT_NE(lat, nullptr);
  EXPECT_GE(lat->count, 8u);

  // Counters never move backwards between snapshots, and the direct
  // Run() between them is visible.
  for (const auto& [name, value] : snap1.counters) {
    EXPECT_GE(snap2.CounterValue(name), value) << name;
  }
  EXPECT_GT(snap2.CounterValue("engine.queries"),
            snap1.CounterValue("engine.queries"));

  // Engine teardown unregisters its collector: no dangling reads.
  { RknnEngine moved = std::move(engine); }
  obs::MetricsSnapshot after = registry.Snapshot();
  EXPECT_FALSE(HasCounter(after, "engine.queries"));
}

// Walks up the parent links; true when `idx` descends from the root.
bool ReachesRoot(const std::vector<obs::SpanRecord>& spans, int32_t idx) {
  int hops = 0;
  while (idx > 0 && hops++ <= static_cast<int>(spans.size())) {
    idx = spans[static_cast<size_t>(idx)].parent;
  }
  return idx == 0;
}

TEST(TelemetryEngineTest, SlowQuerySpanTreeHasHubAndPageChildren) {
  auto w = MakeStoredWorld();

  EngineSources sources;
  sources.graph = &*w->view;
  sources.points = &w->f.points;
  sources.hub_labels = &*w->stored;
  sources.pool = w->pool.get();
  sources.trace.sample_every = 1;
  sources.trace.slow_query_micros = 1;  // everything is "slow"
  RknnEngine engine = RknnEngine::Create(sources).ValueOrDie();

  // A burst, so at least one query crosses the 1us threshold even on
  // warm caches.
  for (int i = 0; i < 16; ++i) {
    auto r = engine.Run(
        QuerySpec::Monochromatic(Algorithm::kHubLabel, w->f.query_node, 1));
    ASSERT_TRUE(r.ok());
  }
  std::vector<obs::SlowQuery> slow = engine.DrainSlowQueries();
  ASSERT_FALSE(slow.empty());
  const obs::SlowQuery& q = slow.back();
  EXPECT_TRUE(q.ok);
  EXPECT_GE(q.total_micros, 1u);
  EXPECT_EQ(q.dropped_spans, 0u);

  // Well-formed tree: one root named "query", every other span's parent
  // precedes it (spans are recorded in open order) and chains to root.
  const auto& spans = q.spans;
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().parent, -1);
  EXPECT_STREQ(spans.front().name, "query");
  bool saw_sweep = false;
  bool saw_verify = false;
  bool saw_label_scan = false;
  bool saw_page_pins = false;
  for (size_t i = 1; i < spans.size(); ++i) {
    ASSERT_GE(spans[i].parent, 0);
    ASSERT_LT(spans[i].parent, static_cast<int32_t>(i));
    EXPECT_TRUE(ReachesRoot(spans, static_cast<int32_t>(i)));
  }
  for (const obs::SpanRecord& s : spans) {
    const std::string name = s.name;
    saw_sweep = saw_sweep || name == "hub.sweep";
    saw_verify = saw_verify || name == "hub.verify";
    saw_label_scan = saw_label_scan || name == "label.scan";
    for (const auto& [key, value] : s.notes) {
      if (std::string(key) == "page.pins" && value > 0) {
        saw_page_pins = true;
      }
    }
  }
  // The hub sweep and per-candidate verification are child spans; the
  // stored-label scans underneath them carry buffer-pool pin notes.
  EXPECT_TRUE(saw_sweep);
  EXPECT_TRUE(saw_verify);  // RNN(q) = {p1, p2}: candidates verified
  EXPECT_TRUE(saw_label_scan);
  EXPECT_TRUE(saw_page_pins);

  // Drain is destructive.
  EXPECT_TRUE(engine.DrainSlowQueries().empty());
}

// QuerySpec::trace arms tracing for that one query even when the
// engine's sampling policy is off (the default) and there is no
// registry at all.
TEST(TelemetryEngineTest, ExplicitTraceFieldArmsWithoutSampling) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  EngineSources sources;
  sources.graph = &view;
  sources.points = &f.points;
  RknnEngine engine = RknnEngine::Create(sources).ValueOrDie();

  obs::TraceContext ctx;
  QuerySpec spec = QuerySpec::Monochromatic(Algorithm::kEager, f.query_node, 1);
  spec.trace = &ctx;
  ASSERT_TRUE(engine.Run(spec).ok());
  EXPECT_EQ(obs::CurrentTrace(), nullptr);  // arm restored after Run
  ASSERT_TRUE(ctx.AllClosed());
  ASSERT_FALSE(ctx.spans().empty());
  EXPECT_STREQ(ctx.spans().front().name, "query");
  bool saw_eager = false;
  for (const obs::SpanRecord& s : ctx.spans()) {
    saw_eager = saw_eager || std::string(s.name) == "eager.expand";
  }
  EXPECT_TRUE(saw_eager);

  // An untraced query must not touch the caller's context.
  const size_t before = ctx.spans().size();
  spec.trace = nullptr;
  ASSERT_TRUE(engine.Run(spec).ok());
  EXPECT_EQ(ctx.spans().size(), before);
}

// Failing queries still close every span they opened: the root span's
// ScopedSpan unwinds with the error, leaving a finished tree the
// caller can inspect.
TEST(TelemetryEngineTest, ErrorPathClosesAllSpans) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  EngineSources sources;
  sources.graph = &view;
  sources.points = &f.points;
  RknnEngine engine = RknnEngine::Create(sources).ValueOrDie();

  obs::TraceContext ctx;
  // Out of range: validated inside the algorithm, AFTER Dispatch armed
  // the trace and opened the root span.
  QuerySpec spec = QuerySpec::Monochromatic(
      Algorithm::kEager, f.g.num_nodes() + 7, 1);
  spec.trace = &ctx;
  EXPECT_FALSE(engine.Run(spec).ok());
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
  EXPECT_TRUE(ctx.AllClosed());
  ASSERT_FALSE(ctx.spans().empty());
  EXPECT_STREQ(ctx.spans().front().name, "query");
  EXPECT_EQ(ctx.spans().front().parent, -1);
}

// Satellite: the stat structs the telemetry collector bridges must
// aggregate every field. The sizeof guards fail this file to compile
// the moment a counter is added, forcing the += audits (and the
// collector) to be revisited.
static_assert(sizeof(SearchStats) == 10 * sizeof(uint64_t),
              "SearchStats gained/lost a field: update operator+=, this "
              "test and the engine metrics collector");
static_assert(sizeof(storage::IoStats) == 4 * sizeof(uint64_t),
              "IoStats gained/lost a field: update operator+=/operator-, "
              "this test and the engine metrics collector");
static_assert(sizeof(UpdateStats) == 7 * sizeof(uint64_t),
              "UpdateStats gained/lost a field: update operator+=, this "
              "test and the engine metrics collector");
static_assert(sizeof(EngineStats) ==
                  sizeof(SearchStats) + sizeof(storage::IoStats) +
                      sizeof(UpdateStats) + 3 * sizeof(uint64_t),
              "EngineStats gained/lost a field: update operator+=, this "
              "test and the engine metrics collector");

TEST(EngineStatsTest, AccumulateCoversEveryField) {
  EngineStats a;
  a.queries = 1;
  a.workspace_grows = 2;
  a.updates = 3;
  a.search = SearchStats{10, 11, 12, 13, 14, 15, 16, 17, 18, 19};
  a.io = storage::IoStats{20, 21, 22, 23};
  a.update = UpdateStats{30, 31, 32, 33, 34, 35, 36};

  EngineStats b;
  b.queries = 100;
  b.workspace_grows = 200;
  b.updates = 300;
  b.search =
      SearchStats{1000, 1100, 1200, 1300, 1400, 1500, 1600, 1700, 1800, 1900};
  b.io = storage::IoStats{2000, 2100, 2200, 2300};
  b.update = UpdateStats{3000, 3100, 3200, 3300, 3400, 3500, 3600};

  a += b;
  EXPECT_EQ(a.queries, 101u);
  EXPECT_EQ(a.workspace_grows, 202u);
  EXPECT_EQ(a.updates, 303u);

  EXPECT_EQ(a.search.nodes_expanded, 1010u);
  EXPECT_EQ(a.search.nodes_scanned, 1111u);
  EXPECT_EQ(a.search.nodes_pruned, 1212u);
  EXPECT_EQ(a.search.range_nn_calls, 1313u);
  EXPECT_EQ(a.search.verify_calls, 1414u);
  EXPECT_EQ(a.search.knn_list_reads, 1515u);
  EXPECT_EQ(a.search.heap_pushes, 1616u);
  EXPECT_EQ(a.search.shortcut_accepts, 1717u);
  EXPECT_EQ(a.search.label_entries, 1818u);
  EXPECT_EQ(a.search.hub_fallbacks, 1919u);

  EXPECT_EQ(a.io.logical_reads, 2020u);
  EXPECT_EQ(a.io.physical_reads, 2121u);
  EXPECT_EQ(a.io.physical_writes, 2222u);
  EXPECT_EQ(a.io.evictions, 2323u);

  EXPECT_EQ(a.update.nodes_touched, 3030u);
  EXPECT_EQ(a.update.lists_written, 3131u);
  EXPECT_EQ(a.update.heap_pushes, 3232u);
  EXPECT_EQ(a.update.border_nodes, 3333u);
  EXPECT_EQ(a.update.log_records, 3434u);
  EXPECT_EQ(a.update.log_flushes, 3535u);
  EXPECT_EQ(a.update.log_bytes, 3636u);
}

TEST(EngineStatsTest, IoStatsDeltaInvertsAccumulate) {
  storage::IoStats base{5, 6, 7, 8};
  storage::IoStats delta{1, 2, 3, 4};
  storage::IoStats total = base;
  total += delta;
  storage::IoStats back = total - base;
  EXPECT_EQ(back.logical_reads, 1u);
  EXPECT_EQ(back.physical_reads, 2u);
  EXPECT_EQ(back.physical_writes, 3u);
  EXPECT_EQ(back.evictions, 4u);
}

}  // namespace
}  // namespace grnn::core
