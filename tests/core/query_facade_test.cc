#include "core/query.h"

#include <gtest/gtest.h>

namespace grnn::core {
namespace {

TEST(QueryFacadeTest, Names) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kEager), "eager");
  EXPECT_STREQ(AlgorithmName(Algorithm::kLazy), "lazy");
  EXPECT_STREQ(AlgorithmName(Algorithm::kLazyEp), "lazy-EP");
  EXPECT_STREQ(AlgorithmName(Algorithm::kEagerM), "eager-M");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBruteForce), "brute-force");
  EXPECT_STREQ(AlgorithmShortName(Algorithm::kEager), "E");
  EXPECT_STREQ(AlgorithmShortName(Algorithm::kEagerM), "EM");
  EXPECT_STREQ(AlgorithmShortName(Algorithm::kLazy), "L");
  EXPECT_STREQ(AlgorithmShortName(Algorithm::kLazyEp), "LP");
}

TEST(QueryFacadeTest, ParseAlgorithmRoundTripsBothNameForms) {
  for (Algorithm a :
       {Algorithm::kEager, Algorithm::kEagerM, Algorithm::kLazy,
        Algorithm::kLazyEp, Algorithm::kBruteForce}) {
    auto by_name = ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(by_name.ok()) << AlgorithmName(a);
    EXPECT_EQ(*by_name, a);
    auto by_short = ParseAlgorithm(AlgorithmShortName(a));
    ASSERT_TRUE(by_short.ok()) << AlgorithmShortName(a);
    EXPECT_EQ(*by_short, a);
  }
}

TEST(QueryFacadeTest, ParseAlgorithmIsCaseInsensitiveAndRejectsJunk) {
  EXPECT_EQ(*ParseAlgorithm("EAGER"), Algorithm::kEager);
  EXPECT_EQ(*ParseAlgorithm("lazy-ep"), Algorithm::kLazyEp);
  EXPECT_EQ(*ParseAlgorithm("lp"), Algorithm::kLazyEp);
  EXPECT_EQ(*ParseAlgorithm("em"), Algorithm::kEagerM);
  EXPECT_EQ(*ParseAlgorithm("bf"), Algorithm::kBruteForce);
  EXPECT_TRUE(ParseAlgorithm("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseAlgorithm("greedy").status().IsInvalidArgument());
}

TEST(QueryFacadeTest, FigureOrderConstant) {
  ASSERT_EQ(std::size(kAllAlgorithms), 4u);
  EXPECT_EQ(kAllAlgorithms[0], Algorithm::kEager);
  EXPECT_EQ(kAllAlgorithms[1], Algorithm::kEagerM);
  EXPECT_EQ(kAllAlgorithms[2], Algorithm::kLazy);
  EXPECT_EQ(kAllAlgorithms[3], Algorithm::kLazyEp);
}

// One-shot dispatch now lives on RknnEngine; engine_test.cc covers the
// kind x algorithm matrix. This suite keeps the enum/name/parser
// contract.

}  // namespace
}  // namespace grnn::core
