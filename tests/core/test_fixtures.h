// Shared graph fixtures for core tests.
//
// PaperExample() reconstructs the running example of the paper (Fig 3):
// nodes n1..n7 (ids 0..6), data points p1@n6, p2@n5, p3@n7, query at n4.
// Edge weights are chosen to satisfy every distance the text mentions:
//   d(q,n3) = 4, d(q,n1) = 5, d(n3,p1) = 3, d(n1,p2) = 3, d(q,p1) = 7,
//   d(q,p2) = 8, and q = NN(p1) = NN(p2), so RNN(q) = {p1, p2}.

#ifndef GRNN_TESTS_CORE_TEST_FIXTURES_H_
#define GRNN_TESTS_CORE_TEST_FIXTURES_H_

#include <vector>

#include "common/rng.h"
#include "core/point_set.h"
#include "core/types.h"
#include "graph/connectivity.h"
#include "graph/graph.h"

namespace grnn::core::testfix {

struct Fixture {
  graph::Graph g;
  NodePointSet points{0};
  NodeId query_node = kInvalidNode;
};

// Paper ids -> 0-based: n1..n7 = 0..6. Points: p1 = 0 @ n6(5),
// p2 = 1 @ n5(4), p3 = 2 @ n7(6). Query node n4 = 3 (empty).
inline Fixture PaperExample() {
  Fixture f;
  f.g = graph::Graph::FromEdges(7, {{3, 2, 4.0},    // n4-n3
                                    {3, 0, 5.0},    // n4-n1
                                    {2, 5, 3.0},    // n3-n6
                                    {2, 6, 5.0},    // n3-n7
                                    {5, 1, 4.0},    // n6-n2
                                    {1, 4, 5.0},    // n2-n5
                                    {4, 0, 3.0}})   // n5-n1
            .ValueOrDie();
  f.points =
      NodePointSet::FromLocations(7, {5, 4, 6}).ValueOrDie();
  f.query_node = 3;
  return f;
}

// Random connected graph: a spanning random tree plus extra random edges,
// with weights in [0.5, 10] (or unit weights when unit == true).
inline graph::Graph RandomConnectedGraph(NodeId n, double extra_edge_factor,
                                         Rng& rng, bool unit = false) {
  std::vector<Edge> edges;
  auto weight = [&]() {
    return unit ? 1.0 : rng.Uniform(0.5, 10.0);
  };
  for (NodeId v = 1; v < n; ++v) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(v));
    edges.push_back({u, v, weight()});
  }
  const size_t extra =
      static_cast<size_t>(extra_edge_factor * static_cast<double>(n));
  size_t attempts = 0;
  auto g0 = graph::Graph::FromEdges(n, edges).ValueOrDie();
  size_t added = 0;
  while (added < extra && attempts < extra * 20) {
    ++attempts;
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v) {
      continue;
    }
    bool dup = false;
    for (const Edge& e : edges) {
      if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) {
        dup = true;
        break;
      }
    }
    if (dup) {
      continue;
    }
    edges.push_back({u, v, weight()});
    ++added;
  }
  return graph::Graph::FromEdges(n, edges).ValueOrDie();
}

// Places points on `count` distinct random nodes.
inline NodePointSet RandomPoints(NodeId num_nodes, size_t count, Rng& rng) {
  auto nodes = rng.SampleWithoutReplacement(num_nodes, count);
  std::vector<NodeId> locations(nodes.begin(), nodes.end());
  return NodePointSet::FromLocations(num_nodes, locations).ValueOrDie();
}

// Point-id projection for result comparisons.
inline std::vector<PointId> Ids(const RknnResult& r) {
  std::vector<PointId> ids;
  ids.reserve(r.results.size());
  for (const PointMatch& m : r.results) {
    ids.push_back(m.point);
  }
  return ids;
}

}  // namespace grnn::core::testfix

#endif  // GRNN_TESTS_CORE_TEST_FIXTURES_H_
