#include "core/point_set.h"

#include <gtest/gtest.h>

namespace grnn::core {
namespace {

TEST(NodePointSetTest, EmptySet) {
  NodePointSet s(10);
  EXPECT_EQ(s.num_points(), 0u);
  EXPECT_EQ(s.num_nodes(), 10u);
  EXPECT_FALSE(s.Contains(0));
  EXPECT_EQ(s.PointAt(3), kInvalidPoint);
  EXPECT_EQ(s.Density(), 0.0);
}

TEST(NodePointSetTest, FromLocations) {
  auto s = NodePointSet::FromLocations(10, {7, 2, 5}).ValueOrDie();
  EXPECT_EQ(s.num_points(), 3u);
  EXPECT_TRUE(s.Contains(7));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(0));
  EXPECT_EQ(s.PointAt(7), 0u);
  EXPECT_EQ(s.PointAt(2), 1u);
  EXPECT_EQ(s.NodeOf(2), 5u);
  EXPECT_DOUBLE_EQ(s.Density(), 0.3);
}

TEST(NodePointSetTest, FromLocationsRejectsDuplicateNode) {
  EXPECT_FALSE(NodePointSet::FromLocations(10, {3, 3}).ok());
}

TEST(NodePointSetTest, FromLocationsRejectsOutOfRange) {
  EXPECT_FALSE(NodePointSet::FromLocations(10, {10}).ok());
}

TEST(NodePointSetTest, FromPredicate) {
  auto s = NodePointSet::FromPredicate(10, [](NodeId n) {
    return n % 3 == 0;
  });
  EXPECT_EQ(s.num_points(), 4u);  // 0, 3, 6, 9
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(9));
  EXPECT_FALSE(s.Contains(1));
  // Ids assigned in node order.
  EXPECT_EQ(s.PointAt(0), 0u);
  EXPECT_EQ(s.PointAt(9), 3u);
}

TEST(NodePointSetTest, AddPoint) {
  NodePointSet s(5);
  auto id = s.AddPoint(2);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_TRUE(s.Contains(2));
  EXPECT_EQ(s.num_points(), 1u);
  EXPECT_TRUE(s.AddPoint(2).status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_FALSE(s.AddPoint(99).ok());
}

TEST(NodePointSetTest, RemovePointLeavesTombstone) {
  auto s = NodePointSet::FromLocations(5, {1, 3}).ValueOrDie();
  ASSERT_TRUE(s.RemovePoint(0).ok());
  EXPECT_FALSE(s.Contains(1));
  EXPECT_FALSE(s.IsLive(0));
  EXPECT_TRUE(s.IsLive(1));
  EXPECT_EQ(s.num_points(), 1u);
  // Ids are not reused.
  auto id = s.AddPoint(1).ValueOrDie();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(s.point_id_bound(), 3u);
}

TEST(NodePointSetTest, RemoveTwiceFails) {
  auto s = NodePointSet::FromLocations(5, {1}).ValueOrDie();
  ASSERT_TRUE(s.RemovePoint(0).ok());
  EXPECT_TRUE(s.RemovePoint(0).IsNotFound());
  EXPECT_TRUE(s.RemovePoint(9).IsNotFound());
}

TEST(NodePointSetTest, LivePoints) {
  auto s = NodePointSet::FromLocations(8, {0, 2, 4, 6}).ValueOrDie();
  ASSERT_TRUE(s.RemovePoint(1).ok());
  EXPECT_EQ(s.LivePoints(), (std::vector<PointId>{0, 2, 3}));
}

}  // namespace
}  // namespace grnn::core
