// Randomized differential harness for the whole engine surface.
//
// Each seed deterministically generates a world from one of the paper's
// graph families (grid / BRITE / road, src/gen/), places node points,
// sites and edge points, and fires QuerySpecs across every
// kind x algorithm x k x exclusion combination. Every result is checked
// against the independent brute-force oracle, and the full spec batch is
// re-executed through the parallel RunBatch path, which must match the
// serial path bit-for-bit (points, hosting nodes and distances).
//
// On failure, the gtest parameter is the seed: replay with
//   differential_test --gtest_filter='*/DifferentialHarness.*/<seed>'
//
// Registered under the `stress` ctest label (tier1 jobs skip it; the
// dedicated stress job and the TSan job run it).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/engine.h"
#include "crash_harness.h"
#include "gen/brite.h"
#include "gen/grid.h"
#include "gen/points.h"
#include "gen/road_network.h"
#include "graph/network_view.h"
#include "index/hub_label.h"
#include "index/hub_point_index.h"
#include "index/label_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/graph_file.h"
#include "storage/stored_graph.h"
#include "test_fixtures.h"

namespace grnn::core {
namespace {

using testfix::Ids;

// Everything one seed's world serves queries from. Kept on the heap so
// engine source pointers stay stable.
struct World {
  graph::Graph g;
  std::optional<graph::GraphView> view;
  NodePointSet points{0};
  NodePointSet sites{0};
  EdgePointSet edge_points;
  MemoryKnnStore knn{0, 1};
  MemoryKnnStore site_knn{0, 1};
  MemoryKnnStore edge_knn{0, 1};
};

constexpr uint32_t kMaxK = 3;

graph::Graph GenerateGraph(uint64_t seed) {
  switch (seed % 3) {
    case 0: {
      gen::GridConfig cfg;
      cfg.rows = 8;
      cfg.cols = 8;
      cfg.avg_degree = 4.5;
      cfg.unit_weights = (seed % 2 == 0);  // exercise distance ties
      cfg.seed = seed;
      return gen::GenerateGrid(cfg).ValueOrDie();
    }
    case 1: {
      gen::BriteConfig cfg;
      cfg.num_nodes = 70;
      cfg.unit_weights = true;  // hop counts: ties abound
      cfg.seed = seed;
      return gen::GenerateBrite(cfg).ValueOrDie();
    }
    default: {
      gen::RoadConfig cfg;
      cfg.num_nodes = 80;
      cfg.seed = seed;
      return gen::GenerateRoadNetwork(cfg).ValueOrDie().g;
    }
  }
}

std::unique_ptr<World> MakeWorld(uint64_t seed) {
  auto w = std::make_unique<World>();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  w->g = GenerateGraph(seed);
  w->view.emplace(&w->g);
  const NodeId n = w->g.num_nodes();

  // Disjoint node placements: ~20% of nodes host points, 8 host sites.
  const size_t num_points = std::max<size_t>(4, n / 5);
  auto nodes = rng.SampleWithoutReplacement(n, num_points + 8);
  std::vector<NodeId> p_locs(nodes.begin(),
                             nodes.begin() + static_cast<long>(num_points));
  std::vector<NodeId> q_locs(nodes.begin() + static_cast<long>(num_points),
                             nodes.end());
  w->points = NodePointSet::FromLocations(n, p_locs).ValueOrDie();
  w->sites = NodePointSet::FromLocations(n, q_locs).ValueOrDie();

  // Edge points on ~12 distinct random edges.
  auto edges = w->g.CollectEdges();
  std::vector<EdgePosition> positions;
  for (uint64_t ei : rng.SampleWithoutReplacement(
           edges.size(), std::min<size_t>(12, edges.size()))) {
    const Edge& e = edges[ei];
    positions.push_back({e.u, e.v, rng.Uniform(0.0, e.w)});
  }
  w->edge_points = EdgePointSet::Create(w->g, positions).ValueOrDie();

  w->knn = MemoryKnnStore(n, kMaxK + 1);
  EXPECT_TRUE(BuildAllNn(*w->view, w->points, &w->knn).ok());
  w->site_knn = MemoryKnnStore(n, kMaxK + 1);
  EXPECT_TRUE(BuildAllNn(*w->view, w->sites, &w->site_knn).ok());
  w->edge_knn = MemoryKnnStore(n, kMaxK + 1);
  EXPECT_TRUE(
      UnrestrictedBuildAllNn(*w->view, w->edge_points, &w->edge_knn).ok());
  return w;
}

RknnEngine NodeEngine(World& w) {
  EngineSources sources;
  sources.graph = &*w.view;
  sources.points = &w.points;
  sources.sites = &w.sites;
  sources.knn = &w.knn;
  sources.site_knn = &w.site_knn;
  return RknnEngine::Create(sources).ValueOrDie();
}

RknnEngine EdgeEngine(World& w) {
  EngineSources sources;
  sources.graph = &*w.view;
  sources.edge_points = &w.edge_points;
  sources.knn = &w.edge_knn;
  return RknnEngine::Create(sources).ValueOrDie();
}

// Same engines with the live-update path unlocked: point-set mutation
// and incremental KNN maintenance flow through ApplyUpdate.
RknnEngine UpdatableNodeEngine(World& w) {
  EngineSources sources;
  sources.graph = &*w.view;
  sources.points = &w.points;
  sources.sites = &w.sites;
  sources.knn = &w.knn;
  sources.site_knn = &w.site_knn;
  sources.updates.points = &w.points;
  sources.updates.sites = &w.sites;
  sources.updates.knn = &w.knn;
  sources.updates.site_knn = &w.site_knn;
  return RknnEngine::Create(sources).ValueOrDie();
}

RknnEngine UpdatableEdgeEngine(World& w) {
  EngineSources sources;
  sources.graph = &*w.view;
  sources.edge_points = &w.edge_points;
  sources.knn = &w.edge_knn;
  sources.updates.edge_points = &w.edge_points;
  sources.updates.knn = &w.edge_knn;
  sources.updates.base_graph = &w.g;
  return RknnEngine::Create(sources).ValueOrDie();
}

// One spec of the given kind. `exclude_self` queries from a live data
// point / site and excludes it (the paper's workload); otherwise the
// target is an arbitrary location.
QuerySpec MakeSpec(World& w, QueryKind kind, Algorithm algo, int k,
                   bool exclude_self, Rng& rng) {
  switch (kind) {
    case QueryKind::kMonochromatic: {
      if (exclude_self) {
        auto live = w.points.LivePoints();
        PointId qp = live[rng.UniformInt(live.size())];
        return QuerySpec::Monochromatic(algo, w.points.NodeOf(qp), k, qp);
      }
      return QuerySpec::Monochromatic(
          algo, static_cast<NodeId>(rng.UniformInt(w.g.num_nodes())), k);
    }
    case QueryKind::kBichromatic: {
      if (exclude_self) {
        auto live = w.sites.LivePoints();
        PointId qs = live[rng.UniformInt(live.size())];
        return QuerySpec::Bichromatic(algo, w.sites.NodeOf(qs), k, qs);
      }
      return QuerySpec::Bichromatic(
          algo, static_cast<NodeId>(rng.UniformInt(w.g.num_nodes())), k);
    }
    case QueryKind::kContinuous: {
      std::vector<NodeId> route;
      NodeId cur = static_cast<NodeId>(rng.UniformInt(w.g.num_nodes()));
      route.push_back(cur);
      for (int hop = 0; hop < 4; ++hop) {
        auto nbrs = w.g.Neighbors(cur);
        cur = nbrs[rng.UniformInt(nbrs.size())].node;
        route.push_back(cur);
      }
      // Routes query arbitrary locations; exclusion still exercises the
      // competitor filter.
      PointId excl = kInvalidPoint;
      if (exclude_self) {
        auto live = w.points.LivePoints();
        excl = live[rng.UniformInt(live.size())];
      }
      return QuerySpec::Continuous(algo, std::move(route), k, excl);
    }
    case QueryKind::kUnrestricted:
      break;
  }
  if (exclude_self) {
    auto live = w.edge_points.LivePoints();
    PointId qp = live[rng.UniformInt(live.size())];
    return QuerySpec::Unrestricted(algo, w.edge_points.PositionOf(qp), k,
                                   qp);
  }
  auto edges = w.g.CollectEdges();
  const Edge& e = edges[rng.UniformInt(edges.size())];
  return QuerySpec::Unrestricted(
      algo, EdgePosition{e.u, e.v, rng.Uniform(0.0, e.w)}, k);
}

// The full combination sweep for the kinds an engine serves:
// every algorithm x k in [1, kMaxK] x {exclude-self, arbitrary target},
// `reps` random targets each.
std::vector<QuerySpec> MakeSpecsForAlgos(World& w,
                                         std::vector<QueryKind> kinds,
                                         std::span<const Algorithm> algos,
                                         int reps, Rng& rng) {
  std::vector<QuerySpec> specs;
  for (QueryKind kind : kinds) {
    for (Algorithm algo : algos) {
      for (int k = 1; k <= static_cast<int>(kMaxK); ++k) {
        for (bool exclude_self : {true, false}) {
          for (int rep = 0; rep < reps; ++rep) {
            specs.push_back(
                MakeSpec(w, kind, algo, k, exclude_self, rng));
          }
        }
      }
    }
  }
  return specs;
}

std::vector<QuerySpec> MakeSpecs(World& w,
                                 std::vector<QueryKind> kinds,
                                 int reps, Rng& rng) {
  return MakeSpecsForAlgos(w, std::move(kinds), kAllAlgorithms, reps,
                           rng);
}

void CheckAgainstOracle(RknnEngine& engine,
                        const std::vector<QuerySpec>& specs,
                        uint64_t seed) {
  for (size_t i = 0; i < specs.size(); ++i) {
    auto result = engine.Run(specs[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    QuerySpec oracle_spec = specs[i];
    oracle_spec.algorithm = Algorithm::kBruteForce;
    auto oracle = engine.Run(oracle_spec);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    EXPECT_EQ(Ids(*result), Ids(*oracle))
        << "replay: seed=" << seed << " spec=" << i << " kind="
        << QueryKindName(specs[i].kind) << " algo="
        << AlgorithmName(specs[i].algorithm) << " k=" << specs[i].k
        << " exclude=" << specs[i].exclude_point;
  }
}

void CheckParallelMatchesSerial(RknnEngine& engine,
                                const std::vector<QuerySpec>& specs,
                                uint64_t seed) {
  auto serial = engine.RunBatch(specs);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (ParallelOptions par : {ParallelOptions{2, 7},
                              ParallelOptions{4, 3},
                              ParallelOptions{8, 1}}) {
    auto parallel = engine.RunBatch(specs, par);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(parallel->results.size(), serial->results.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      // Bit-for-bit: same points, same hosting nodes, same distances.
      EXPECT_EQ(parallel->results[i].results, serial->results[i].results)
          << "replay: seed=" << seed << " spec=" << i << " threads="
          << par.num_threads << " chunk=" << par.chunk;
    }
    // Aggregated counters are order-independent sums: no stat loss.
    EXPECT_EQ(parallel->stats.queries, serial->stats.queries);
    EXPECT_EQ(parallel->stats.search.nodes_expanded,
              serial->stats.search.nodes_expanded);
    EXPECT_EQ(parallel->stats.search.verify_calls,
              serial->stats.search.verify_calls);
    EXPECT_EQ(parallel->stats.search.heap_pushes,
              serial->stats.search.heap_pushes);
  }
}

// A node free in BOTH node populations (engine updates keep the
// points/sites placements disjoint, like the seeded worlds).
NodeId FreeNode(World& w, Rng& rng) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    NodeId n = static_cast<NodeId>(rng.UniformInt(w.g.num_nodes()));
    if (!w.points.Contains(n) && !w.sites.Contains(n)) {
      return n;
    }
  }
  return kInvalidNode;
}

// Applies one random engine update per iteration: inserts/deletes over
// points, sites and edge points, guarded so every population keeps at
// least three live members (the spec generator samples from them).
void ApplyRandomBurst(World& w, RknnEngine& node_engine,
                      RknnEngine& edge_engine, size_t ops, Rng& rng) {
  auto edges = w.g.CollectEdges();
  for (size_t i = 0; i < ops; ++i) {
    switch (rng.UniformInt(6)) {
      case 0: {  // insert data point
        NodeId n = FreeNode(w, rng);
        if (n != kInvalidNode) {
          ASSERT_TRUE(
              node_engine.ApplyUpdate(UpdateSpec::InsertPoint(n)).ok());
        }
        break;
      }
      case 1: {  // delete data point
        auto live = w.points.LivePoints();
        if (live.size() > 3) {
          PointId victim = live[rng.UniformInt(live.size())];
          ASSERT_TRUE(
              node_engine.ApplyUpdate(UpdateSpec::DeletePoint(victim))
                  .ok());
        }
        break;
      }
      case 2: {  // insert site
        NodeId n = FreeNode(w, rng);
        if (n != kInvalidNode) {
          ASSERT_TRUE(
              node_engine.ApplyUpdate(UpdateSpec::InsertSite(n)).ok());
        }
        break;
      }
      case 3: {  // delete site
        auto live = w.sites.LivePoints();
        if (live.size() > 3) {
          PointId victim = live[rng.UniformInt(live.size())];
          ASSERT_TRUE(
              node_engine.ApplyUpdate(UpdateSpec::DeleteSite(victim))
                  .ok());
        }
        break;
      }
      case 4: {  // insert edge point
        const Edge& e = edges[rng.UniformInt(edges.size())];
        ASSERT_TRUE(edge_engine
                        .ApplyUpdate(UpdateSpec::InsertEdgePoint(
                            {e.u, e.v, rng.Uniform(0.0, e.w)}))
                        .ok());
        break;
      }
      default: {  // delete edge point
        auto live = w.edge_points.LivePoints();
        if (live.size() > 3) {
          PointId victim = live[rng.UniformInt(live.size())];
          ASSERT_TRUE(
              edge_engine.ApplyUpdate(UpdateSpec::DeleteEdgePoint(victim))
                  .ok());
        }
        break;
      }
    }
  }
}

// The maintenance oracle: the incrementally maintained store must hold,
// for every node, the same nearest-neighbor DISTANCE multiset as a
// from-scratch rebuild over the mutated world. (Point ids can
// legitimately differ at tied boundary distances — unit-weight worlds
// tie constantly — but the k nearest distances are unique.)
void CheckStoreMatchesRebuild(const KnnStore& maintained,
                              const KnnStore& rebuilt, NodeId num_nodes,
                              uint64_t seed, const char* label) {
  std::vector<NnEntry> have, want;
  for (NodeId n = 0; n < num_nodes; ++n) {
    ASSERT_TRUE(maintained.Read(n, &have).ok());
    ASSERT_TRUE(rebuilt.Read(n, &want).ok());
    ASSERT_EQ(have.size(), want.size())
        << "replay: seed=" << seed << " store=" << label << " node=" << n;
    for (size_t i = 0; i < have.size(); ++i) {
      EXPECT_NEAR(have[i].dist, want[i].dist, 1e-9)
          << "replay: seed=" << seed << " store=" << label << " node="
          << n << " slot=" << i;
    }
  }
}

class DifferentialHarness : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialHarness, EveryCombinationMatchesOracleAndParallel) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  SCOPED_TRACE("replay: differential_test seed=" + std::to_string(seed));
  auto w = MakeWorld(seed);
  Rng rng(seed * 31 + 7);

  RknnEngine node_engine = NodeEngine(*w);
  auto node_specs = MakeSpecs(
      *w,
      {QueryKind::kMonochromatic, QueryKind::kBichromatic,
       QueryKind::kContinuous},
      /*reps=*/2, rng);
  CheckAgainstOracle(node_engine, node_specs, seed);
  CheckParallelMatchesSerial(node_engine, node_specs, seed);

  RknnEngine edge_engine = EdgeEngine(*w);
  auto edge_specs = MakeSpecs(
      *w, {QueryKind::kUnrestricted, QueryKind::kContinuous},
      /*reps=*/2, rng);
  CheckAgainstOracle(edge_engine, edge_specs, seed);
  CheckParallelMatchesSerial(edge_engine, edge_specs, seed);
}

// The update-aware oracle: seeded bursts of engine inserts/deletes
// mutate every population through ApplyUpdate (which incrementally
// maintains the KNN stores, Figs 9-11), and after each burst
//   (a) every maintained store must match a from-scratch BuildAllNn
//       rebuild of the mutated world (distance multisets per node), and
//   (b) the full kind x algorithm x k matrix must still match the
//       brute-force oracle, serially and through the parallel batch
//       path.
TEST_P(DifferentialHarness, UpdateBurstsKeepStoresAndMatrixExact) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  SCOPED_TRACE("replay: differential_test seed=" + std::to_string(seed) +
               " (update phase)");
  auto w = MakeWorld(seed);
  Rng rng(seed * 131 + 29);

  RknnEngine node_engine = UpdatableNodeEngine(*w);
  RknnEngine edge_engine = UpdatableEdgeEngine(*w);

  constexpr int kBursts = 3;
  constexpr size_t kOpsPerBurst = 10;
  for (int burst = 0; burst < kBursts; ++burst) {
    SCOPED_TRACE("burst=" + std::to_string(burst));
    ApplyRandomBurst(*w, node_engine, edge_engine, kOpsPerBurst, rng);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }

    // (a) maintained stores vs from-scratch rebuilds of the mutated
    // world.
    const NodeId n = w->g.num_nodes();
    MemoryKnnStore fresh_knn(n, kMaxK + 1);
    ASSERT_TRUE(BuildAllNn(*w->view, w->points, &fresh_knn).ok());
    CheckStoreMatchesRebuild(w->knn, fresh_knn, n, seed, "points");
    MemoryKnnStore fresh_site_knn(n, kMaxK + 1);
    ASSERT_TRUE(BuildAllNn(*w->view, w->sites, &fresh_site_knn).ok());
    CheckStoreMatchesRebuild(w->site_knn, fresh_site_knn, n, seed,
                             "sites");
    MemoryKnnStore fresh_edge_knn(n, kMaxK + 1);
    ASSERT_TRUE(
        UnrestrictedBuildAllNn(*w->view, w->edge_points, &fresh_edge_knn)
            .ok());
    CheckStoreMatchesRebuild(w->edge_knn, fresh_edge_knn, n, seed,
                             "edge_points");

    // (b) the full query matrix over the mutated world.
    auto node_specs = MakeSpecs(
        *w,
        {QueryKind::kMonochromatic, QueryKind::kBichromatic,
         QueryKind::kContinuous},
        /*reps=*/1, rng);
    CheckAgainstOracle(node_engine, node_specs, seed);
    CheckParallelMatchesSerial(node_engine, node_specs, seed);
    auto edge_specs = MakeSpecs(
        *w, {QueryKind::kUnrestricted, QueryKind::kContinuous},
        /*reps=*/1, rng);
    CheckAgainstOracle(edge_engine, edge_specs, seed);
    CheckParallelMatchesSerial(edge_engine, edge_specs, seed);
  }

  // Update accounting survived the bursts: every applied op was counted.
  EXPECT_GT(node_engine.lifetime_stats().updates +
                edge_engine.lifetime_stats().updates,
            0u);
}

// The storage-equivalence phase: the same spec matrix answered through
// disk-backed StoredGraph views must match the in-memory GraphView
// engine bit-for-bit (points, hosting nodes, distances), for BOTH page
// layouts — v1 packed (cursor-decode path) and v2 aligned (zero-copy
// lease path) — serially and through the parallel batch path.
struct StoredWorld {
  std::unique_ptr<storage::MemoryDiskManager> disk;
  std::unique_ptr<storage::GraphFile> file;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<storage::StoredGraph> view;
};

StoredWorld MakeStoredWorld(const graph::Graph& g,
                            storage::PageLayout layout) {
  StoredWorld sw;
  // 512-byte pages so the small worlds still span many pages; 64-frame
  // pool: lease-friendly, exercising the held-pin path under v2.
  sw.disk = std::make_unique<storage::MemoryDiskManager>(512);
  storage::GraphFileOptions opts;
  opts.layout = layout;
  sw.file = std::make_unique<storage::GraphFile>(
      storage::GraphFile::Build(g, sw.disk.get(), opts).ValueOrDie());
  sw.pool = std::make_unique<storage::BufferPool>(sw.disk.get(), 64);
  sw.view =
      std::make_unique<storage::StoredGraph>(sw.file.get(), sw.pool.get());
  return sw;
}

TEST_P(DifferentialHarness, StoredLayoutsMatchMemoryEngineBitForBit) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  SCOPED_TRACE("replay: differential_test seed=" + std::to_string(seed) +
               " (stored-layout phase)");
  auto w = MakeWorld(seed);
  Rng rng(seed * 977 + 13);

  RknnEngine mem_node = NodeEngine(*w);
  RknnEngine mem_edge = EdgeEngine(*w);
  auto node_specs = MakeSpecs(
      *w,
      {QueryKind::kMonochromatic, QueryKind::kBichromatic,
       QueryKind::kContinuous},
      /*reps=*/1, rng);
  auto edge_specs = MakeSpecs(
      *w, {QueryKind::kUnrestricted, QueryKind::kContinuous},
      /*reps=*/1, rng);
  auto node_want = mem_node.RunBatch(node_specs);
  ASSERT_TRUE(node_want.ok());
  auto edge_want = mem_edge.RunBatch(edge_specs);
  ASSERT_TRUE(edge_want.ok());

  for (storage::PageLayout layout :
       {storage::PageLayout::kV1Packed,
        storage::PageLayout::kV2Aligned}) {
    SCOPED_TRACE(std::string("layout=") +
                 storage::PageLayoutName(layout));
    StoredWorld sw = MakeStoredWorld(w->g, layout);

    EngineSources node_sources;
    node_sources.graph = sw.view.get();
    node_sources.points = &w->points;
    node_sources.sites = &w->sites;
    node_sources.knn = &w->knn;
    node_sources.site_knn = &w->site_knn;
    node_sources.pool = sw.pool.get();
    RknnEngine stored_node =
        RknnEngine::Create(node_sources).ValueOrDie();

    auto serial = stored_node.RunBatch(node_specs);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (size_t i = 0; i < node_specs.size(); ++i) {
      EXPECT_EQ(serial->results[i].results, node_want->results[i].results)
          << "spec=" << i;
    }
    EXPECT_EQ(sw.pool->num_pinned(), 0u);
    auto parallel =
        stored_node.RunBatch(node_specs, ParallelOptions{4, 5});
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    for (size_t i = 0; i < node_specs.size(); ++i) {
      EXPECT_EQ(parallel->results[i].results,
                node_want->results[i].results)
          << "spec=" << i << " (parallel)";
    }
    EXPECT_EQ(sw.pool->num_pinned(), 0u);

    EngineSources edge_sources;
    edge_sources.graph = sw.view.get();
    edge_sources.edge_points = &w->edge_points;
    edge_sources.knn = &w->edge_knn;
    edge_sources.pool = sw.pool.get();
    RknnEngine stored_edge =
        RknnEngine::Create(edge_sources).ValueOrDie();
    auto edge_serial = stored_edge.RunBatch(edge_specs);
    ASSERT_TRUE(edge_serial.ok()) << edge_serial.status().ToString();
    for (size_t i = 0; i < edge_specs.size(); ++i) {
      EXPECT_EQ(edge_serial->results[i].results,
                edge_want->results[i].results)
          << "spec=" << i;
    }
    auto edge_parallel =
        stored_edge.RunBatch(edge_specs, ParallelOptions{4, 3});
    ASSERT_TRUE(edge_parallel.ok()) << edge_parallel.status().ToString();
    for (size_t i = 0; i < edge_specs.size(); ++i) {
      EXPECT_EQ(edge_parallel->results[i].results,
                edge_want->results[i].results)
          << "spec=" << i << " (parallel)";
    }
    EXPECT_EQ(sw.pool->num_pinned(), 0u);
  }
}

// Bit-for-bit comparison of two hub point indexes: every counter and
// every per-hub (dist, point)-sorted run identical.
void ExpectHubIndexesIdentical(const index::HubPointIndex& got,
                               const index::HubPointIndex& want,
                               const char* what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(got.num_hubs(), want.num_hubs());
  EXPECT_EQ(got.num_entries(), want.num_entries());
  EXPECT_EQ(got.num_points(), want.num_points());
  EXPECT_EQ(got.point_id_bound(), want.point_id_bound());
  for (NodeId h = 0; h < want.num_hubs(); ++h) {
    auto a = got.ListOf(h);
    auto b = want.ListOf(h);
    ASSERT_EQ(a.size(), b.size()) << "hub=" << h;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "hub=" << h << " entry=" << i;
    }
  }
}

// The hub-label phase: the full kind matrix — monochromatic,
// bichromatic, and continuous through the node engine; unrestricted
// and continuous through the edge engine — x k x exclusion through
// Algorithm::kHubLabel must match the brute-force oracle, from the
// in-memory HubLabelIndex AND from a LabelFile reopened off disk,
// serially and through the parallel batch path, with the two label
// backends bit-for-bit identical to each other. Then seeded update
// bursts flow through updatable engines: the incrementally maintained
// indexes must never go stale (hub_fallbacks stays 0), a test-side
// mirror patched with the same splices must equal a from-scratch
// HubPointIndex::Build over the mutated sets bit for bit, and
// RebuildIndex() acts as a consistency check that leaves answers
// unchanged.
TEST_P(DifferentialHarness, HubLabelMatchesOracleFromBothLabelBackends) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  SCOPED_TRACE("replay: differential_test seed=" + std::to_string(seed) +
               " (hub-label phase)");
  auto w = MakeWorld(seed);
  Rng rng(seed * 523 + 3);

  auto labels = index::HubLabelBuilder::Build(*w->view).ValueOrDie();

  EngineSources sources;
  sources.graph = &*w->view;
  sources.points = &w->points;
  sources.sites = &w->sites;
  sources.knn = &w->knn;
  sources.site_knn = &w->site_knn;
  sources.hub_labels = &labels;
  RknnEngine mem_engine = RknnEngine::Create(sources).ValueOrDie();

  constexpr Algorithm kHubOnly[] = {Algorithm::kHubLabel};
  const std::vector<QueryKind> kNodeKinds{QueryKind::kMonochromatic,
                                          QueryKind::kBichromatic,
                                          QueryKind::kContinuous};
  const std::vector<QueryKind> kEdgeKinds{QueryKind::kUnrestricted,
                                          QueryKind::kContinuous};
  auto specs =
      MakeSpecsForAlgos(*w, kNodeKinds, kHubOnly, /*reps=*/2, rng);
  CheckAgainstOracle(mem_engine, specs, seed);
  CheckParallelMatchesSerial(mem_engine, specs, seed);
  auto mem_batch = mem_engine.RunBatch(specs);
  ASSERT_TRUE(mem_batch.ok());
  // The label path actually served these (no silent fallback).
  EXPECT_EQ(mem_batch->stats.search.hub_fallbacks, 0u);
  EXPECT_GT(mem_batch->stats.search.label_entries, 0u);

  // Edge engine over the same labels: unrestricted queries walk the
  // edge-resident occurrence index; continuous routes sweep it per node.
  EngineSources edge_sources;
  edge_sources.graph = &*w->view;
  edge_sources.edge_points = &w->edge_points;
  edge_sources.knn = &w->edge_knn;
  edge_sources.hub_labels = &labels;
  RknnEngine mem_edge = RknnEngine::Create(edge_sources).ValueOrDie();
  auto edge_specs =
      MakeSpecsForAlgos(*w, kEdgeKinds, kHubOnly, /*reps=*/2, rng);
  CheckAgainstOracle(mem_edge, edge_specs, seed);
  CheckParallelMatchesSerial(mem_edge, edge_specs, seed);
  auto mem_edge_batch = mem_edge.RunBatch(edge_specs);
  ASSERT_TRUE(mem_edge_batch.ok());
  EXPECT_EQ(mem_edge_batch->stats.search.hub_fallbacks, 0u);
  EXPECT_GT(mem_edge_batch->stats.search.label_entries, 0u);

  // Stored-label engines: persist, reopen, serve through the pool.
  auto disk = std::make_unique<storage::MemoryDiskManager>(512);
  auto built = index::LabelFile::Build(labels, disk.get()).ValueOrDie();
  auto file = std::make_unique<index::LabelFile>(
      index::LabelFile::Open(disk.get(), built.first_page())
          .ValueOrDie());
  auto pool = std::make_unique<storage::BufferPool>(disk.get(), 64);
  index::StoredLabelIndex stored(file.get(), pool.get());
  sources.hub_labels = &stored;
  sources.pool = pool.get();
  RknnEngine stored_engine = RknnEngine::Create(sources).ValueOrDie();
  edge_sources.hub_labels = &stored;
  edge_sources.pool = pool.get();
  RknnEngine stored_edge = RknnEngine::Create(edge_sources).ValueOrDie();

  auto stored_serial = stored_engine.RunBatch(specs);
  ASSERT_TRUE(stored_serial.ok()) << stored_serial.status().ToString();
  for (size_t i = 0; i < specs.size(); ++i) {
    // Bit-for-bit across label backends: same bytes, same arithmetic.
    EXPECT_EQ(stored_serial->results[i].results,
              mem_batch->results[i].results)
        << "spec=" << i;
  }
  EXPECT_EQ(pool->num_pinned(), 0u);
  auto stored_parallel =
      stored_engine.RunBatch(specs, ParallelOptions{4, 5});
  ASSERT_TRUE(stored_parallel.ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(stored_parallel->results[i].results,
              mem_batch->results[i].results)
        << "spec=" << i << " (parallel)";
  }
  EXPECT_EQ(pool->num_pinned(), 0u);

  auto stored_edge_serial = stored_edge.RunBatch(edge_specs);
  ASSERT_TRUE(stored_edge_serial.ok())
      << stored_edge_serial.status().ToString();
  for (size_t i = 0; i < edge_specs.size(); ++i) {
    EXPECT_EQ(stored_edge_serial->results[i].results,
              mem_edge_batch->results[i].results)
        << "edge spec=" << i;
  }
  auto stored_edge_parallel =
      stored_edge.RunBatch(edge_specs, ParallelOptions{4, 3});
  ASSERT_TRUE(stored_edge_parallel.ok());
  for (size_t i = 0; i < edge_specs.size(); ++i) {
    EXPECT_EQ(stored_edge_parallel->results[i].results,
              mem_edge_batch->results[i].results)
        << "edge spec=" << i << " (parallel)";
  }
  EXPECT_EQ(pool->num_pinned(), 0u);

  // Incremental-maintenance bursts: every update splices the hub
  // indexes in place, so the label path never goes dark. A test-side
  // mirror receives the same splices and must stay bit-for-bit equal
  // to a from-scratch Build over the mutated sets.
  EngineSources up_sources;
  up_sources.graph = &*w->view;
  up_sources.points = &w->points;
  up_sources.sites = &w->sites;
  up_sources.knn = &w->knn;
  up_sources.site_knn = &w->site_knn;
  up_sources.hub_labels = &labels;
  up_sources.updates.points = &w->points;
  up_sources.updates.sites = &w->sites;
  up_sources.updates.knn = &w->knn;
  up_sources.updates.site_knn = &w->site_knn;
  RknnEngine up_node = RknnEngine::Create(up_sources).ValueOrDie();
  EngineSources up_edge_sources;
  up_edge_sources.graph = &*w->view;
  up_edge_sources.edge_points = &w->edge_points;
  up_edge_sources.knn = &w->edge_knn;
  up_edge_sources.hub_labels = &labels;
  up_edge_sources.updates.edge_points = &w->edge_points;
  up_edge_sources.updates.knn = &w->edge_knn;
  up_edge_sources.updates.base_graph = &w->g;
  RknnEngine up_edge = RknnEngine::Create(up_edge_sources).ValueOrDie();
  ASSERT_FALSE(up_node.hub_index_stale());
  ASSERT_FALSE(up_edge.hub_index_stale());

  auto mirror_points =
      index::HubPointIndex::Build(labels, w->points).ValueOrDie();
  auto mirror_sites =
      index::HubPointIndex::Build(labels, w->sites).ValueOrDie();
  auto mirror_edge =
      index::HubPointIndex::Build(labels, w->edge_points).ValueOrDie();
  auto edges = w->g.CollectEdges();

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("burst round " + std::to_string(round));
    // Points: one insert at a free node, one delete of a live point
    // (its host captured BEFORE the tombstone forgets it).
    NodeId free = FreeNode(*w, rng);
    ASSERT_NE(free, kInvalidNode);
    auto pin = up_node.ApplyUpdate(UpdateSpec::InsertPoint(free));
    ASSERT_TRUE(pin.ok());
    ASSERT_TRUE(mirror_points.InsertPoint(labels, pin->point, free).ok());
    auto live = w->points.LivePoints();
    PointId victim = live[rng.UniformInt(live.size())];
    NodeId victim_host = w->points.NodeOf(victim);
    ASSERT_TRUE(
        up_node.ApplyUpdate(UpdateSpec::DeletePoint(victim)).ok());
    ASSERT_TRUE(
        mirror_points.ErasePoint(labels, victim, victim_host).ok());

    // Sites: same dance through the bichromatic population.
    NodeId sfree = FreeNode(*w, rng);
    ASSERT_NE(sfree, kInvalidNode);
    auto sin = up_node.ApplyUpdate(UpdateSpec::InsertSite(sfree));
    ASSERT_TRUE(sin.ok());
    ASSERT_TRUE(mirror_sites.InsertPoint(labels, sin->point, sfree).ok());
    auto slive = w->sites.LivePoints();
    PointId svictim = slive[rng.UniformInt(slive.size())];
    NodeId svictim_host = w->sites.NodeOf(svictim);
    ASSERT_TRUE(
        up_node.ApplyUpdate(UpdateSpec::DeleteSite(svictim)).ok());
    ASSERT_TRUE(
        mirror_sites.ErasePoint(labels, svictim, svictim_host).ok());

    // Edge points: insert reads the canonicalized position back from
    // the set; delete captures position + weight pre-tombstone.
    const Edge& e = edges[rng.UniformInt(edges.size())];
    auto ein = up_edge.ApplyUpdate(UpdateSpec::InsertEdgePoint(
        EdgePosition{e.u, e.v, rng.Uniform(0.0, e.w)}));
    ASSERT_TRUE(ein.ok());
    ASSERT_TRUE(mirror_edge
                    .InsertEdgePoint(
                        labels, ein->point,
                        w->edge_points.PositionOf(ein->point),
                        w->edge_points.EdgeWeightOfPoint(ein->point))
                    .ok());
    auto elive = w->edge_points.LivePoints();
    PointId evictim = elive[rng.UniformInt(elive.size())];
    EdgePosition evictim_pos = w->edge_points.PositionOf(evictim);
    Weight evictim_w = w->edge_points.EdgeWeightOfPoint(evictim);
    ASSERT_TRUE(
        up_edge.ApplyUpdate(UpdateSpec::DeleteEdgePoint(evictim)).ok());
    ASSERT_TRUE(mirror_edge
                    .EraseEdgePoint(labels, evictim, evictim_pos,
                                    evictim_w)
                    .ok());

    // Nothing went dark.
    ASSERT_FALSE(up_node.hub_index_stale());
    ASSERT_FALSE(up_edge.hub_index_stale());

    // The spliced mirrors equal a from-scratch Build, bit for bit.
    ExpectHubIndexesIdentical(
        mirror_points,
        index::HubPointIndex::Build(labels, w->points).ValueOrDie(),
        "points");
    ExpectHubIndexesIdentical(
        mirror_sites,
        index::HubPointIndex::Build(labels, w->sites).ValueOrDie(),
        "sites");
    ExpectHubIndexesIdentical(
        mirror_edge,
        index::HubPointIndex::Build(labels, w->edge_points).ValueOrDie(),
        "edge_points");

    // Label-served, oracle-exact over the mutated world.
    auto node_specs =
        MakeSpecsForAlgos(*w, kNodeKinds, kHubOnly, /*reps=*/1, rng);
    CheckAgainstOracle(up_node, node_specs, seed);
    auto node_batch = up_node.RunBatch(node_specs);
    ASSERT_TRUE(node_batch.ok());
    EXPECT_EQ(node_batch->stats.search.hub_fallbacks, 0u);
    EXPECT_GT(node_batch->stats.search.label_entries, 0u);
    auto burst_edge_specs =
        MakeSpecsForAlgos(*w, kEdgeKinds, kHubOnly, /*reps=*/1, rng);
    CheckAgainstOracle(up_edge, burst_edge_specs, seed);
    auto edge_batch = up_edge.RunBatch(burst_edge_specs);
    ASSERT_TRUE(edge_batch.ok());
    EXPECT_EQ(edge_batch->stats.search.hub_fallbacks, 0u);
    EXPECT_GT(edge_batch->stats.search.label_entries, 0u);
  }

  // RebuildIndex is a consistency check now: answers are unchanged.
  auto final_node_specs =
      MakeSpecsForAlgos(*w, kNodeKinds, kHubOnly, /*reps=*/1, rng);
  auto final_edge_specs =
      MakeSpecsForAlgos(*w, kEdgeKinds, kHubOnly, /*reps=*/1, rng);
  auto before_node = up_node.RunBatch(final_node_specs);
  ASSERT_TRUE(before_node.ok());
  auto before_edge = up_edge.RunBatch(final_edge_specs);
  ASSERT_TRUE(before_edge.ok());
  ASSERT_TRUE(up_node.RebuildIndex().ok());
  ASSERT_TRUE(up_edge.RebuildIndex().ok());
  ASSERT_FALSE(up_node.hub_index_stale());
  ASSERT_FALSE(up_edge.hub_index_stale());
  auto after_node = up_node.RunBatch(final_node_specs);
  ASSERT_TRUE(after_node.ok());
  for (size_t i = 0; i < final_node_specs.size(); ++i) {
    EXPECT_EQ(after_node->results[i].results,
              before_node->results[i].results)
        << "node spec=" << i << " (post-rebuild)";
  }
  EXPECT_EQ(after_node->stats.search.hub_fallbacks, 0u);
  auto after_edge = up_edge.RunBatch(final_edge_specs);
  ASSERT_TRUE(after_edge.ok());
  for (size_t i = 0; i < final_edge_specs.size(); ++i) {
    EXPECT_EQ(after_edge->results[i].results,
              before_edge->results[i].results)
        << "edge spec=" << i << " (post-rebuild)";
  }
  EXPECT_EQ(after_edge->stats.search.hub_fallbacks, 0u);
  CheckParallelMatchesSerial(up_node, final_node_specs, seed);
  CheckParallelMatchesSerial(up_edge, final_edge_specs, seed);
}

// The order/parallel phase: labels built with the PARTITION hub order by
// the PARALLEL rank-windowed builder (cross-checked bit-for-bit against
// the canonical serial build via verify_canonical) must serve the full
// kind matrix oracle-exactly through node and edge engines — and a v3
// delta-layout LabelFile reopened off disk must answer bit-for-bit the
// same as the in-memory index. The hub order changes label CONTENT, so
// this phase proves engine correctness is order- and builder-invariant,
// not an artifact of the default degree order.
TEST_P(DifferentialHarness, PartitionOrderedParallelLabelsMatchOracle) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  SCOPED_TRACE("replay: differential_test seed=" + std::to_string(seed) +
               " (partition-order phase)");
  auto w = MakeWorld(seed);
  Rng rng(seed * 769 + 11);

  index::HubLabelBuildOptions build_opts;
  build_opts.order = index::HubOrder::kPartition;
  build_opts.num_threads = 3;
  build_opts.window = 5;
  build_opts.verify_canonical = true;  // parallel == serial, bit for bit
  index::HubLabelBuildStats build_stats;
  auto labels =
      index::HubLabelBuilder::Build(*w->view, build_opts, &build_stats)
          .ValueOrDie();
  EXPECT_GT(build_stats.windows, 0u);
  EXPECT_EQ(build_stats.threads, 3);

  EngineSources sources;
  sources.graph = &*w->view;
  sources.points = &w->points;
  sources.sites = &w->sites;
  sources.knn = &w->knn;
  sources.site_knn = &w->site_knn;
  sources.hub_labels = &labels;
  RknnEngine mem_engine = RknnEngine::Create(sources).ValueOrDie();

  constexpr Algorithm kHubOnly[] = {Algorithm::kHubLabel};
  const std::vector<QueryKind> kNodeKinds{QueryKind::kMonochromatic,
                                          QueryKind::kBichromatic,
                                          QueryKind::kContinuous};
  const std::vector<QueryKind> kEdgeKinds{QueryKind::kUnrestricted,
                                          QueryKind::kContinuous};
  auto specs =
      MakeSpecsForAlgos(*w, kNodeKinds, kHubOnly, /*reps=*/2, rng);
  CheckAgainstOracle(mem_engine, specs, seed);
  CheckParallelMatchesSerial(mem_engine, specs, seed);
  auto mem_batch = mem_engine.RunBatch(specs);
  ASSERT_TRUE(mem_batch.ok());
  EXPECT_EQ(mem_batch->stats.search.hub_fallbacks, 0u);
  EXPECT_GT(mem_batch->stats.search.label_entries, 0u);

  EngineSources edge_sources;
  edge_sources.graph = &*w->view;
  edge_sources.edge_points = &w->edge_points;
  edge_sources.knn = &w->edge_knn;
  edge_sources.hub_labels = &labels;
  RknnEngine mem_edge = RknnEngine::Create(edge_sources).ValueOrDie();
  auto edge_specs =
      MakeSpecsForAlgos(*w, kEdgeKinds, kHubOnly, /*reps=*/2, rng);
  CheckAgainstOracle(mem_edge, edge_specs, seed);
  CheckParallelMatchesSerial(mem_edge, edge_specs, seed);
  auto mem_edge_batch = mem_edge.RunBatch(edge_specs);
  ASSERT_TRUE(mem_edge_batch.ok());
  EXPECT_EQ(mem_edge_batch->stats.search.hub_fallbacks, 0u);

  // Stored labels in the v3 delta layout, reopened off disk: the
  // decode-only blob path must reproduce the memory answers exactly.
  auto disk = std::make_unique<storage::MemoryDiskManager>(512);
  auto built =
      index::LabelFile::Build(labels, disk.get(),
                              index::LabelLayout::kDelta)
          .ValueOrDie();
  auto file = std::make_unique<index::LabelFile>(
      index::LabelFile::Open(disk.get(), built.first_page())
          .ValueOrDie());
  ASSERT_EQ(file->layout(), index::LabelLayout::kDelta);
  auto pool = std::make_unique<storage::BufferPool>(disk.get(), 64);
  index::StoredLabelIndex stored(file.get(), pool.get());
  sources.hub_labels = &stored;
  sources.pool = pool.get();
  RknnEngine stored_engine = RknnEngine::Create(sources).ValueOrDie();
  edge_sources.hub_labels = &stored;
  edge_sources.pool = pool.get();
  RknnEngine stored_edge = RknnEngine::Create(edge_sources).ValueOrDie();

  auto stored_serial = stored_engine.RunBatch(specs);
  ASSERT_TRUE(stored_serial.ok()) << stored_serial.status().ToString();
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(stored_serial->results[i].results,
              mem_batch->results[i].results)
        << "spec=" << i;
  }
  auto stored_parallel =
      stored_engine.RunBatch(specs, ParallelOptions{4, 5});
  ASSERT_TRUE(stored_parallel.ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(stored_parallel->results[i].results,
              mem_batch->results[i].results)
        << "spec=" << i << " (parallel)";
  }
  auto stored_edge_serial = stored_edge.RunBatch(edge_specs);
  ASSERT_TRUE(stored_edge_serial.ok());
  for (size_t i = 0; i < edge_specs.size(); ++i) {
    EXPECT_EQ(stored_edge_serial->results[i].results,
              mem_edge_batch->results[i].results)
        << "edge spec=" << i;
  }
  EXPECT_EQ(pool->num_pinned(), 0u);
}

// The crash/recover phase: a seeded update burst over journaled stores
// is killed at an injected write point (a quartile of the world's
// enumerated WritePage/Sync sequence — the dedicated crash_recovery_test
// sweeps every point; here each differential seed samples three), the
// surviving devices are reopened, redo recovery replays the log, and
// the recovered world must (a) contain every acknowledged update,
// (b) match a from-scratch store rebuild, (c) recover idempotently,
// and (d) answer the full kind x algorithm matrix oracle-exactly.
TEST_P(DifferentialHarness, CrashRecoveryRestoresAckedStateExactly) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  SCOPED_TRACE("replay: differential_test seed=" + std::to_string(seed) +
               " (crash phase)");
  using core::testing::CrashWorldOptions;
  using core::testing::RunCrashCycle;
  using storage::testing::CrashSurvival;
  using storage::testing::FaultAction;

  CrashWorldOptions opts;
  opts.seed = seed;
  opts.ops = 30;
  const uint64_t n = core::testing::CountWritePoints(opts);
  ASSERT_GT(n, 0u);
  for (uint64_t quartile = 1; quartile <= 3; ++quartile) {
    const uint64_t point = quartile * n / 4;
    const CrashSurvival survival = quartile % 2 == 0
                                       ? CrashSurvival::kKeepUnsynced
                                       : CrashSurvival::kLoseUnsynced;
    const Status s = RunCrashCycle(opts, point, FaultAction::kFailStop,
                                   survival, /*check_queries=*/true);
    ASSERT_TRUE(s.ok()) << "seed " << seed << " crash point " << point
                        << "/" << n << ": " << s.ToString();
  }
}

// 6 seeds x (3 + 2) kinds x 4 algorithms x 3 k x 2 exclusion modes x
// 2 reps = 2880 oracle-checked queries, each additionally replayed
// through 3 parallel configurations — plus, per seed, 3 update bursts
// each re-verified against rebuilt stores and the reduced (reps=1)
// matrix, a storage-equivalence phase replaying the matrix through
// StoredGraph v1/v2 engines, a hub-label phase holding
// Algorithm::kHubLabel (memory + reopened stored labels, serial +
// parallel, staleness probe included) to the same oracle, and a
// partition-order phase re-running that matrix over parallel-built
// separator-ordered labels served from a v3 delta LabelFile.
INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialHarness,
                         ::testing::Range(1, 7),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace grnn::core
