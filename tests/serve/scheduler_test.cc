// serve::Scheduler policy suite: admission/overload shedding, deadline
// expiry, batch-failure attribution, shutdown draining — plus the
// LatencyHistogram the closed-loop benches read percentiles from.
//
// The tests pin the single worker inside SchedulerOptions::batch_hook
// (a gate it waits on after forming a batch) to build queue states
// deterministically: with the worker parked, Submits land in the queue
// and stay there, so "queue full" and "deadline passed while queued"
// are exact, not timing-dependent.

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "gen/grid.h"
#include "gen/points.h"
#include "serve/scheduler.h"

namespace grnn::serve {
namespace {

using core::Algorithm;
using core::QuerySpec;

// --- LatencyHistogram ---

TEST(LatencyHistogramTest, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), LatencyHistogram::kSubBuckets);
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(100), LatencyHistogram::kSubBuckets - 1);
  // Below 2^kSubBits every value gets its own bucket: quantiles exact.
  EXPECT_EQ(h.Percentile(50), LatencyHistogram::kSubBuckets / 2 - 1);
}

TEST(LatencyHistogramTest, QuantileErrorIsBounded) {
  LatencyHistogram h;
  const std::vector<uint64_t> samples = {100,    777,     3052,
                                         40000,  1234567, 89,
                                         650000, 31,      4096};
  for (uint64_t s : samples) {
    h.Record(s);
  }
  std::vector<uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    // Mid-rank p targets sample i exactly; an end-of-rank p would sit on
    // the ceil() boundary and flip to the next sample on FP error.
    const double p = 100.0 * (static_cast<double>(i) + 0.5) /
                     static_cast<double>(sorted.size());
    const uint64_t got = h.Percentile(p);
    const uint64_t want = sorted[i];
    EXPECT_GE(got, want);
    // Log-linear bound: bucket width is at most 1/kSubBuckets of the
    // value's magnitude.
    EXPECT_LE(got, want + want / LatencyHistogram::kSubBuckets + 1)
        << "p=" << p;
  }
  // The top percentile is clamped to the true max, not a bucket edge.
  EXPECT_EQ(h.Percentile(100), 1234567u);
}

TEST(LatencyHistogramTest, PercentilesAreMonotone) {
  LatencyHistogram h;
  uint64_t x = 12345;
  for (int i = 0; i < 500; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    h.Record(x >> 44);  // ~[0, 1M) microseconds
  }
  uint64_t prev = 0;
  for (double p = 0; p <= 100.0; p += 2.5) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(LatencyHistogramTest, MergeCombinesCountsAndMax) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(10);
  a.Record(1000);
  b.Record(500000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.Percentile(100), 500000u);
  EXPECT_EQ(a.Percentile(1), 10u);
  // Merging an empty histogram is a no-op.
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
}

// --- Scheduler ---

struct ServeWorld {
  graph::Graph g;
  graph::GraphView view{nullptr};
  core::NodePointSet points{0};
  core::RknnEngine engine;

  static ServeWorld Make() {
    gen::GridConfig cfg;
    cfg.rows = 10;
    cfg.cols = 10;
    cfg.seed = 5;
    graph::Graph g = gen::GenerateGrid(cfg).ValueOrDie();
    Rng rng(13);
    core::NodePointSet points =
        gen::PlaceNodePoints(g.num_nodes(), 0.25, rng).ValueOrDie();
    return ServeWorld(std::move(g), std::move(points));
  }

  QuerySpec Spec(NodeId node) const {
    return QuerySpec::Monochromatic(Algorithm::kEager, node, 2);
  }

 private:
  ServeWorld(graph::Graph&& graph, core::NodePointSet&& pts)
      : g(std::move(graph)), view(&g), points(std::move(pts)),
        engine(MakeEngine()) {}

  core::RknnEngine MakeEngine() {
    core::EngineSources sources;
    sources.graph = &view;
    sources.points = &points;
    sources.snapshot_reads = true;  // the serving-layer pairing
    return core::RknnEngine::Create(sources).ValueOrDie();
  }
};

/// Gate used as batch_hook: the worker parks after forming its first
/// batch until Release; later batches pass straight through.
class WorkerGate {
 public:
  void operator()(size_t) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      entered_ = true;
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return released_; });
  }

  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(SchedulerTest, RunsSubmittedQueries) {
  ServeWorld w = ServeWorld::Make();
  SchedulerOptions opts;
  opts.num_workers = 1;
  Scheduler sched(&w.engine, opts);

  std::vector<Scheduler::Ticket> tickets;
  for (NodeId n = 0; n < 20; ++n) {
    tickets.push_back(sched.Submit(w.Spec(n)));
  }
  for (NodeId n = 0; n < 20; ++n) {
    const Scheduler::Response& r = tickets[n].Wait();
    ASSERT_TRUE(r.result.ok()) << r.result.status().ToString();
    EXPECT_EQ(r.disposition, Disposition::kRun);
    // Scheduler answers must match direct engine answers.
    auto direct = w.engine.Run(w.Spec(n));
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(r.result->results, direct->results);
  }
  const Scheduler::Stats s = sched.stats();
  EXPECT_EQ(s.submitted, 20u);
  EXPECT_EQ(s.admitted, 20u);
  EXPECT_EQ(s.completed, 20u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_GE(s.batches, 1u);
  EXPECT_EQ(s.latency.count(), 20u);
}

TEST(SchedulerTest, InvalidTicketReportsNotCompleted) {
  Scheduler::Ticket ticket;
  EXPECT_FALSE(ticket.valid());
  const Scheduler::Response& r = ticket.Wait();
  EXPECT_FALSE(r.result.ok());
}

// Satellite coverage: the overload path. Queue fills -> immediate shed
// with kResourceExhausted (the shed response arrives while the server
// is still wedged — overload feedback does not queue behind the
// backlog), and a drained queue admits again.
TEST(SchedulerTest, OverloadShedsImmediatelyAndRecovers) {
  ServeWorld w = ServeWorld::Make();
  WorkerGate gate;
  SchedulerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 1;
  opts.queue_capacity = 4;
  opts.batch_hook = std::ref(gate);
  Scheduler sched(&w.engine, opts);

  // Plug: occupies the worker inside the gate.
  Scheduler::Ticket plug = sched.Submit(w.Spec(0));
  gate.AwaitEntered();

  // Fill the queue to capacity behind the parked worker.
  std::vector<Scheduler::Ticket> queued;
  for (NodeId n = 1; n <= 4; ++n) {
    queued.push_back(sched.Submit(w.Spec(n)));
  }
  // Overflow: shed inline, with the worker still parked.
  Scheduler::Ticket overflow = sched.Submit(w.Spec(5));
  const Scheduler::Response& shed = overflow.Wait();
  EXPECT_EQ(shed.disposition, Disposition::kShed);
  EXPECT_TRUE(shed.result.status().IsResourceExhausted())
      << shed.result.status().ToString();

  {
    const Scheduler::Stats s = sched.stats();
    EXPECT_EQ(s.submitted, 6u);
    EXPECT_EQ(s.admitted, 5u);
    EXPECT_EQ(s.shed, 1u);
    EXPECT_EQ(s.completed, 0u);  // the worker never ran anything yet
  }

  gate.Release();
  ASSERT_TRUE(plug.Wait().result.ok());
  for (auto& t : queued) {
    const Scheduler::Response& r = t.Wait();
    EXPECT_EQ(r.disposition, Disposition::kRun);
    EXPECT_TRUE(r.result.ok()) << r.result.status().ToString();
  }
  // Drained queue admits again.
  Scheduler::Ticket after = sched.Submit(w.Spec(6));
  EXPECT_TRUE(after.Wait().result.ok());
  const Scheduler::Stats s = sched.stats();
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.completed, 6u);
}

TEST(SchedulerTest, ExpiredDeadlinesCompleteUnrun) {
  ServeWorld w = ServeWorld::Make();
  WorkerGate gate;
  SchedulerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 1;
  opts.batch_hook = std::ref(gate);
  Scheduler sched(&w.engine, opts);

  Scheduler::Ticket plug = sched.Submit(w.Spec(0));
  gate.AwaitEntered();
  // Queued behind the parked worker with a microsecond deadline: it
  // expires long before the worker gets to it.
  Scheduler::Ticket doomed = sched.Submit(w.Spec(1), /*deadline_micros=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  gate.Release();

  const Scheduler::Response& r = doomed.Wait();
  EXPECT_EQ(r.disposition, Disposition::kExpired);
  EXPECT_TRUE(r.result.status().IsResourceExhausted());
  ASSERT_TRUE(plug.Wait().result.ok());
  const Scheduler::Stats s = sched.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.completed, 1u);
}

// A failing spec inside a batch must not poison its batchmates:
// RunBatch aborts on first error, so the scheduler replays the batch
// per-request and the error attributes to the bad request alone.
TEST(SchedulerTest, BatchFailureAttributesToTheBadRequest) {
  ServeWorld w = ServeWorld::Make();
  WorkerGate gate;
  SchedulerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 8;
  opts.batch_hook = std::ref(gate);
  Scheduler sched(&w.engine, opts);

  Scheduler::Ticket plug = sched.Submit(w.Spec(0));
  gate.AwaitEntered();

  QuerySpec bad = w.Spec(1);
  bad.k = 0;  // rejected by Dispatch with InvalidArgument
  Scheduler::Ticket good_a = sched.Submit(w.Spec(2));
  Scheduler::Ticket bad_ticket = sched.Submit(bad);
  Scheduler::Ticket good_b = sched.Submit(w.Spec(3));
  gate.Release();

  EXPECT_TRUE(good_a.Wait().result.ok());
  EXPECT_TRUE(good_b.Wait().result.ok());
  EXPECT_TRUE(bad_ticket.Wait().result.status().IsInvalidArgument())
      << bad_ticket.Wait().result.status().ToString();
  EXPECT_EQ(bad_ticket.Wait().disposition, Disposition::kRun);
  const Scheduler::Stats s = sched.stats();
  EXPECT_EQ(s.batch_fallbacks, 1u);
  EXPECT_EQ(s.completed, 4u);
}

TEST(SchedulerTest, ShutdownDrainsAdmittedRequests) {
  ServeWorld w = ServeWorld::Make();
  SchedulerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 4;
  Scheduler sched(&w.engine, opts);

  std::vector<Scheduler::Ticket> tickets;
  for (NodeId n = 0; n < 30; ++n) {
    tickets.push_back(sched.Submit(w.Spec(n)));
  }
  sched.Shutdown();
  // Every admitted request completed (none dropped); submits after
  // Shutdown shed.
  for (auto& t : tickets) {
    const Scheduler::Response& r = t.Wait();
    EXPECT_EQ(r.disposition, Disposition::kRun);
    EXPECT_TRUE(r.result.ok());
  }
  Scheduler::Ticket late = sched.Submit(w.Spec(0));
  EXPECT_EQ(late.Wait().disposition, Disposition::kShed);
  EXPECT_TRUE(late.Wait().result.status().IsResourceExhausted());
}

TEST(SchedulerTest, MultipleWorkersServeConcurrently) {
  ServeWorld w = ServeWorld::Make();
  SchedulerOptions opts;
  opts.num_workers = 3;
  opts.max_batch = 4;
  Scheduler sched(&w.engine, opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const NodeId n = static_cast<NodeId>((c * kPerClient + i) %
                                             w.g.num_nodes());
        Scheduler::Ticket t = sched.Submit(w.Spec(n));
        if (!t.Wait().result.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : clients) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const Scheduler::Stats s = sched.stats();
  EXPECT_EQ(s.completed, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.latency.count(), s.completed);
  // The epoch path carried every one of these queries.
  EXPECT_GE(w.engine.epoch_stats().pins, s.completed);
}

}  // namespace
}  // namespace grnn::serve
