// EpochManager unit + stress suite: the pin/retire/reclaim protocol the
// serving layer's snapshot reads stand on. The stress case is the one
// that matters under ASan/TSan: readers dereference a published pointer
// under a pin while a writer retires thousands of predecessors — any
// early reclamation is a use-after-free the sanitizer jobs catch.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/epoch.h"

namespace grnn::serve {
namespace {

TEST(EpochManagerTest, StartsIdle) {
  EpochManager mgr;
  EXPECT_EQ(mgr.epoch(), 0u);
  EXPECT_EQ(mgr.MinPinnedEpoch(), UINT64_MAX);
  const EpochStats s = mgr.stats();
  EXPECT_EQ(s.pins, 0u);
  EXPECT_EQ(s.retired, 0u);
  EXPECT_EQ(s.limbo, 0u);
}

TEST(EpochManagerTest, PinTracksAndReleases) {
  EpochManager mgr;
  {
    EpochManager::Guard g = mgr.Pin();
    EXPECT_TRUE(g.pinned());
    EXPECT_EQ(g.epoch(), 0u);
    EXPECT_EQ(mgr.MinPinnedEpoch(), 0u);
  }
  EXPECT_EQ(mgr.MinPinnedEpoch(), UINT64_MAX);
  EXPECT_EQ(mgr.stats().pins, 1u);
}

TEST(EpochManagerTest, GuardMoveTransfersThePin) {
  EpochManager mgr;
  EpochManager::Guard a = mgr.Pin();
  EpochManager::Guard b = std::move(a);
  EXPECT_FALSE(a.pinned());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.pinned());
  EXPECT_EQ(mgr.MinPinnedEpoch(), 0u);
  b = EpochManager::Guard();  // releases through move-assignment
  EXPECT_EQ(mgr.MinPinnedEpoch(), UINT64_MAX);
}

TEST(EpochManagerTest, RetireAdvancesTheEpoch) {
  EpochManager mgr;
  mgr.Retire(std::make_shared<int>(1));
  EXPECT_EQ(mgr.epoch(), 1u);
  mgr.Retire(std::make_shared<int>(2));
  EXPECT_EQ(mgr.epoch(), 2u);
}

TEST(EpochManagerTest, LivePinBlocksReclaimUntilReleased) {
  EpochManager mgr;
  auto obj = std::make_shared<int>(42);
  std::weak_ptr<int> weak = obj;

  EpochManager::Guard guard = mgr.Pin();  // epoch 0
  mgr.Retire(std::move(obj));             // retired at epoch 0
  EXPECT_EQ(mgr.Reclaim(), 0u);
  EXPECT_FALSE(weak.expired());  // the pinned reader may still hold it
  EXPECT_EQ(mgr.stats().limbo, 1u);

  guard = EpochManager::Guard();  // unpin
  EXPECT_EQ(mgr.Reclaim(), 1u);
  EXPECT_TRUE(weak.expired());
  const EpochStats s = mgr.stats();
  EXPECT_EQ(s.limbo, 0u);
  EXPECT_EQ(s.reclaimed, 1u);
}

TEST(EpochManagerTest, RetireWithoutPinsReclaimsOpportunistically) {
  EpochManager mgr;
  auto obj = std::make_shared<int>(7);
  std::weak_ptr<int> weak = obj;
  // With nothing pinned, the opportunistic reclaim inside Retire frees
  // the object before Retire even returns: an idle server holds no
  // limbo.
  mgr.Retire(std::move(obj));
  EXPECT_TRUE(weak.expired());
  EXPECT_EQ(mgr.stats().limbo, 0u);
}

TEST(EpochManagerTest, PinAfterRetireDoesNotDelayReclaim) {
  EpochManager mgr;
  EpochManager::Guard blocker = mgr.Pin();  // epoch 0
  auto obj = std::make_shared<int>(7);
  std::weak_ptr<int> weak = obj;
  mgr.Retire(std::move(obj));  // tagged epoch 0, held by the blocker
  EXPECT_FALSE(weak.expired());

  blocker = EpochManager::Guard();
  // A pin taken AFTER the retire observes epoch 1 > 0: it cannot be
  // holding the retired object, so reclamation proceeds under it.
  EpochManager::Guard late = mgr.Pin();
  EXPECT_EQ(late.epoch(), 1u);
  EXPECT_EQ(mgr.Reclaim(), 1u);
  EXPECT_TRUE(weak.expired());
}

TEST(EpochManagerTest, OldestPinGovernsReclaim) {
  EpochManager mgr;
  EpochManager::Guard old_pin = mgr.Pin();  // epoch 0
  auto a = std::make_shared<int>(1);
  std::weak_ptr<int> weak_a = a;
  mgr.Retire(std::move(a));                  // epoch 0
  EpochManager::Guard new_pin = mgr.Pin();   // epoch 1
  auto b = std::make_shared<int>(2);
  std::weak_ptr<int> weak_b = b;
  mgr.Retire(std::move(b));                  // epoch 1

  EXPECT_EQ(mgr.MinPinnedEpoch(), 0u);
  EXPECT_EQ(mgr.Reclaim(), 0u);  // both blocked by the epoch-0 pin

  old_pin = EpochManager::Guard();
  EXPECT_EQ(mgr.MinPinnedEpoch(), 1u);
  EXPECT_EQ(mgr.Reclaim(), 1u);  // `a` (epoch 0 < 1) frees, `b` stays
  EXPECT_TRUE(weak_a.expired());
  EXPECT_FALSE(weak_b.expired());

  new_pin = EpochManager::Guard();
  EXPECT_EQ(mgr.Reclaim(), 1u);
  EXPECT_TRUE(weak_b.expired());
}

TEST(EpochManagerTest, ManyConcurrentPinsShareTheSlotArray) {
  EpochManager mgr;
  std::vector<EpochManager::Guard> guards;
  for (size_t i = 0; i < EpochManager::kNumSlots; ++i) {
    guards.push_back(mgr.Pin());
  }
  EXPECT_EQ(mgr.MinPinnedEpoch(), 0u);
  guards.clear();
  EXPECT_EQ(mgr.MinPinnedEpoch(), UINT64_MAX);
  EXPECT_EQ(mgr.stats().pins, EpochManager::kNumSlots);
}

// The publication pattern the engine uses, under concurrency: readers
// pin, load the published pointer and validate the payload; the writer
// publishes a replacement and retires the old object. A reclamation bug
// is a use-after-free here (sanitizer jobs), a payload mismatch is a
// torn publication.
TEST(EpochManagerTest, ConcurrentPinRetireNeverFreesALiveObject) {
  struct Payload {
    uint64_t value = 0;
    uint64_t check = 0;  // always ~value in a fully published object
  };
  EpochManager mgr;
  auto make = [](uint64_t v) {
    auto p = std::make_shared<Payload>();
    p->value = v;
    p->check = ~v;
    return p;
  };

  std::shared_ptr<Payload> holder = make(0);
  std::atomic<const Payload*> current{holder.get()};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochManager::Guard g = mgr.Pin();
        const Payload* p = current.load(std::memory_order_seq_cst);
        if (p->check != ~p->value) {
          torn.fetch_add(1);
        }
      }
    });
  }

  constexpr uint64_t kVersions = 2000;
  for (uint64_t i = 1; i <= kVersions; ++i) {
    auto next = make(i);
    const Payload* next_raw = next.get();
    std::shared_ptr<Payload> old = std::move(holder);
    holder = std::move(next);
    // Unpublish first, then retire: the engine's publication order.
    current.store(next_raw, std::memory_order_seq_cst);
    mgr.Retire(std::move(old));
  }
  stop.store(true);
  for (auto& th : readers) {
    th.join();
  }

  EXPECT_EQ(torn.load(), 0u);
  mgr.Reclaim();
  const EpochStats s = mgr.stats();
  EXPECT_EQ(s.retired, kVersions);
  EXPECT_EQ(s.reclaimed, kVersions);
  EXPECT_EQ(s.limbo, 0u);
  EXPECT_EQ(s.epoch, kVersions);
}

}  // namespace
}  // namespace grnn::serve
