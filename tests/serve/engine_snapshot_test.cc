// Snapshot-mode RknnEngine semantics (EngineSources::snapshot_reads):
// the serving layer's contract changes relative to lock mode — versions
// are authoritative and the caller's sinks are init-only, updates
// publish atomically or not at all, hub staleness is per-version, and
// stored maintained stores are rejected at Create. Equivalence with the
// lock-mode engine across kinds and algorithms is the anchor: the
// serving layer may change HOW queries are served, never WHAT they
// answer.

#include <gtest/gtest.h>

#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "gen/grid.h"
#include "gen/points.h"
#include "index/hub_label.h"

namespace grnn::core {
namespace {

// Address-stable world data; tests create a graph::GraphView over `g`
// locally once the struct has its final address (the repo's fixture
// idiom — the view holds a raw Graph pointer).
struct SnapshotWorld {
  graph::Graph g;
  NodePointSet points{0};
  NodePointSet sites{0};
  MemoryKnnStore knn{0, 0};
  MemoryKnnStore site_knn{0, 0};

  static SnapshotWorld Make(uint64_t seed) {
    SnapshotWorld w;
    gen::GridConfig cfg;
    cfg.rows = 10;
    cfg.cols = 10;
    cfg.seed = seed;
    w.g = gen::GenerateGrid(cfg).ValueOrDie();
    graph::GraphView view(&w.g);
    Rng rng(seed * 7 + 3);
    w.points =
        gen::PlaceNodePoints(w.g.num_nodes(), 0.2, rng).ValueOrDie();
    w.sites =
        gen::PlaceNodePoints(w.g.num_nodes(), 0.1, rng).ValueOrDie();
    w.knn = MemoryKnnStore(w.g.num_nodes(), 4);
    w.site_knn = MemoryKnnStore(w.g.num_nodes(), 4);
    EXPECT_TRUE(BuildAllNn(view, w.points, &w.knn).ok());
    EXPECT_TRUE(BuildAllNn(view, w.sites, &w.site_knn).ok());
    return w;
  }

  EngineSources Sources(const graph::GraphView* view, bool snapshot,
                        bool updatable) {
    EngineSources s;
    s.graph = view;
    s.points = &points;
    s.sites = &sites;
    s.knn = &knn;
    s.site_knn = &site_knn;
    s.snapshot_reads = snapshot;
    if (updatable) {
      s.updates.points = &points;
      s.updates.knn = &knn;
      s.updates.sites = &sites;
      s.updates.site_knn = &site_knn;
    }
    return s;
  }
};

std::vector<NodeId> Nodes(const RknnResult& r) {
  std::vector<NodeId> nodes;
  for (const PointMatch& m : r.results) {
    nodes.push_back(m.node);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

TEST(EngineSnapshotTest, MatchesLockModeAcrossKindsAndAlgorithms) {
  SnapshotWorld w = SnapshotWorld::Make(/*seed=*/17);
  graph::GraphView view(&w.g);
  auto lock_engine =
      RknnEngine::Create(w.Sources(&view, false, false)).ValueOrDie();
  auto snap_engine =
      RknnEngine::Create(w.Sources(&view, true, false)).ValueOrDie();

  Rng rng(41);
  std::vector<QuerySpec> specs;
  for (Algorithm algo : kAllAlgorithms) {
    for (int k = 1; k <= 3; ++k) {
      const NodeId n =
          static_cast<NodeId>(rng.UniformInt(w.g.num_nodes()));
      specs.push_back(QuerySpec::Monochromatic(algo, n, k));
      specs.push_back(QuerySpec::Bichromatic(algo, n, k));
      specs.push_back(QuerySpec::Continuous(
          algo, {n, static_cast<NodeId>(rng.UniformInt(w.g.num_nodes()))},
          k));
    }
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    auto lock_r = lock_engine.Run(specs[i]);
    auto snap_r = snap_engine.Run(specs[i]);
    ASSERT_TRUE(lock_r.ok()) << lock_r.status().ToString();
    ASSERT_TRUE(snap_r.ok()) << snap_r.status().ToString();
    EXPECT_EQ(Nodes(*lock_r), Nodes(*snap_r)) << "spec " << i;
  }
  // Every snapshot dispatch pinned an epoch; nothing was published.
  EXPECT_GE(snap_engine.epoch_stats().pins, specs.size());
  EXPECT_EQ(snap_engine.world_seq(), 0u);
  EXPECT_EQ(lock_engine.epoch_stats().pins, 0u);
}

TEST(EngineSnapshotTest, UpdatesPublishVersionsAndLeaveSinksUntouched) {
  SnapshotWorld w = SnapshotWorld::Make(/*seed=*/19);
  graph::GraphView view(&w.g);
  auto engine =
      RknnEngine::Create(w.Sources(&view, true, true)).ValueOrDie();

  NodeId free_node = kInvalidNode;
  for (NodeId n = 0; n < w.g.num_nodes(); ++n) {
    if (!w.points.Contains(n)) {
      free_node = n;
      break;
    }
  }
  ASSERT_NE(free_node, kInvalidNode);

  auto ins = engine.ApplyUpdate(UpdateSpec::InsertPoint(free_node));
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(engine.world_seq(), 1u);
  // Init-only contract: the CALLER'S set did not change — the insert
  // lives in the published version.
  EXPECT_FALSE(w.points.Contains(free_node));
  auto probe = engine.Run(QuerySpec::Monochromatic(
      Algorithm::kBruteForce, free_node, 1, ins->point));
  ASSERT_TRUE(probe.ok());

  // The engine serves the inserted point: an eager query AT the free
  // node excluding nothing must now see a point hosted there iff it is
  // its own nearest… simplest decisive check: delete round-trips.
  auto del = engine.ApplyUpdate(UpdateSpec::DeletePoint(ins->point));
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(engine.world_seq(), 2u);

  // Failed updates publish nothing.
  auto bad = engine.ApplyUpdate(UpdateSpec::DeletePoint(ins->point));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(engine.world_seq(), 2u);

  // With no readers in flight, retired versions drain.
  engine.ReclaimVersions();
  const serve::EpochStats es = engine.epoch_stats();
  EXPECT_EQ(es.retired, 2u);
  EXPECT_EQ(es.reclaimed, 2u);
  EXPECT_EQ(es.limbo, 0u);
}

TEST(EngineSnapshotTest, InsertIsVisibleToQueriesAgainstTheNewVersion) {
  SnapshotWorld w = SnapshotWorld::Make(/*seed=*/23);
  graph::GraphView view(&w.g);
  auto engine =
      RknnEngine::Create(w.Sources(&view, true, true)).ValueOrDie();
  // Oracle: lock-mode engine over a private copy, updated in place.
  SnapshotWorld w2 = SnapshotWorld::Make(/*seed=*/23);
  graph::GraphView view2(&w2.g);
  auto oracle =
      RknnEngine::Create(w2.Sources(&view2, false, true)).ValueOrDie();

  Rng rng(59);
  for (int round = 0; round < 10; ++round) {
    NodeId free_node = kInvalidNode;
    while (free_node == kInvalidNode) {
      const NodeId n =
          static_cast<NodeId>(rng.UniformInt(w.g.num_nodes()));
      // Both worlds hold identical sets, so one containment check works.
      if (!w2.points.Contains(n)) {
        free_node = n;
      }
    }
    auto ins = engine.ApplyUpdate(UpdateSpec::InsertPoint(free_node));
    auto oracle_ins =
        oracle.ApplyUpdate(UpdateSpec::InsertPoint(free_node));
    ASSERT_TRUE(ins.ok());
    ASSERT_TRUE(oracle_ins.ok());
    for (Algorithm algo : kAllAlgorithms) {
      const QuerySpec spec = QuerySpec::Monochromatic(
          algo, static_cast<NodeId>(rng.UniformInt(w.g.num_nodes())), 2);
      auto got = engine.Run(spec);
      auto want = oracle.Run(spec);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      EXPECT_EQ(Nodes(*got), Nodes(*want)) << "round " << round;
    }
    if (round % 2 == 1) {
      ASSERT_TRUE(
          engine.ApplyUpdate(UpdateSpec::DeletePoint(ins->point)).ok());
      ASSERT_TRUE(
          oracle.ApplyUpdate(UpdateSpec::DeletePoint(oracle_ins->point))
              .ok());
    }
  }
}

TEST(EngineSnapshotTest, HubIndexStaysFreshAcrossPublishedVersions) {
  SnapshotWorld w = SnapshotWorld::Make(/*seed=*/29);
  graph::GraphView view(&w.g);
  auto labels = index::HubLabelBuilder::Build(view).ValueOrDie();
  EngineSources sources = w.Sources(&view, true, true);
  sources.hub_labels = &labels;
  auto engine = RknnEngine::Create(sources).ValueOrDie();

  Rng rng(71);
  const NodeId q = static_cast<NodeId>(rng.UniformInt(w.g.num_nodes()));
  const QuerySpec hub_spec =
      QuerySpec::Monochromatic(Algorithm::kHubLabel, q, 2);
  const QuerySpec eager_spec =
      QuerySpec::Monochromatic(Algorithm::kEager, q, 2);

  // Fresh at Create: hub answers without fallback.
  EXPECT_FALSE(engine.hub_index_stale());
  auto fresh = engine.Run(hub_spec);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->stats.hub_fallbacks, 0u);

  // A node-domain update clones-and-splices the hub index onto the
  // published successor version (PR 8): the label path keeps serving,
  // exactly, with no fallback and no staleness.
  NodeId free_node = kInvalidNode;
  for (NodeId n = 0; n < w.g.num_nodes(); ++n) {
    if (!w.points.Contains(n)) {
      free_node = n;
      break;
    }
  }
  auto ins = engine.ApplyUpdate(UpdateSpec::InsertPoint(free_node));
  ASSERT_TRUE(ins.ok());
  EXPECT_FALSE(engine.hub_index_stale());
  auto patched = engine.Run(hub_spec);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(patched->stats.hub_fallbacks, 0u);
  EXPECT_GT(patched->stats.label_entries, 0u);
  auto eager = engine.Run(eager_spec);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(Nodes(*patched), Nodes(*eager));

  // A delete splices back out, still without going dark.
  ASSERT_TRUE(
      engine.ApplyUpdate(UpdateSpec::DeletePoint(ins->point)).ok());
  EXPECT_FALSE(engine.hub_index_stale());
  auto deleted = engine.Run(hub_spec);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->stats.hub_fallbacks, 0u);

  // RebuildIndex is now a consistency publication, not a requirement:
  // it publishes a from-scratch version (one more seq) whose answers
  // match the incrementally patched ones bit-for-bit.
  const uint64_t seq_before = engine.world_seq();
  ASSERT_TRUE(engine.RebuildIndex().ok());
  EXPECT_EQ(engine.world_seq(), seq_before + 1);
  EXPECT_FALSE(engine.hub_index_stale());
  auto rebuilt = engine.Run(hub_spec);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->stats.hub_fallbacks, 0u);
  EXPECT_EQ(rebuilt->results, deleted->results);
}

TEST(EngineSnapshotTest, RejectsStoredMaintainedStores) {
  // A FileKnnStore-backed updatable engine is valid in lock mode but
  // must be rejected in snapshot mode: its pages mutate in place.
  gen::GridConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.seed = 31;
  graph::Graph g = gen::GenerateGrid(cfg).ValueOrDie();
  Rng rng(31);
  NodePointSet points =
      gen::PlaceNodePoints(g.num_nodes(), 0.2, rng).ValueOrDie();
  auto env = bench::BuildStoredRestricted(g, points, /*K=*/4,
                                          /*pool_pages=*/8,
                                          /*pool_shards=*/1)
                 .ValueOrDie();
  auto lock_engine = bench::MakeRestrictedUpdatableEngine(env, points);
  ASSERT_TRUE(lock_engine.ok());

  EngineSources sources = lock_engine->sources();
  sources.snapshot_reads = true;
  auto rejected = RknnEngine::Create(sources);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument());
}

TEST(EngineSnapshotTest, EdgeDomainUpdatesPublishVersions) {
  gen::GridConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.seed = 37;
  graph::Graph g = gen::GenerateGrid(cfg).ValueOrDie();
  graph::GraphView view(&g);
  Rng rng(37);
  EdgePointSet edge_points =
      gen::PlaceEdgePoints(g, 0.2, rng).ValueOrDie();

  EngineSources sources;
  sources.graph = &view;
  sources.edge_points = &edge_points;
  sources.updates.edge_points = &edge_points;
  sources.updates.base_graph = &g;
  sources.snapshot_reads = true;
  auto engine = RknnEngine::Create(sources).ValueOrDie();

  // Oracle over a private copy, lock mode.
  EdgePointSet oracle_points = edge_points;
  EngineSources oracle_sources;
  oracle_sources.graph = &view;
  oracle_sources.edge_points = &oracle_points;
  oracle_sources.updates.edge_points = &oracle_points;
  oracle_sources.updates.base_graph = &g;
  auto oracle = RknnEngine::Create(oracle_sources).ValueOrDie();

  const PointId victim = edge_points.LivePoints().front();
  const EdgePosition pos = edge_points.PositionOf(victim);
  ASSERT_TRUE(
      engine.ApplyUpdate(UpdateSpec::DeleteEdgePoint(victim)).ok());
  ASSERT_TRUE(
      oracle.ApplyUpdate(UpdateSpec::DeleteEdgePoint(victim)).ok());
  EXPECT_EQ(engine.world_seq(), 1u);
  // Init-only: the caller's edge set still holds the victim.
  EXPECT_TRUE(edge_points.IsLive(victim));

  for (Algorithm algo :
       {Algorithm::kEager, Algorithm::kLazy, Algorithm::kBruteForce}) {
    const QuerySpec spec = QuerySpec::Unrestricted(algo, pos, 2);
    auto got = engine.Run(spec);
    auto want = oracle.Run(spec);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ(Nodes(*got), Nodes(*want));
  }
}

}  // namespace
}  // namespace grnn::core
