// Regression suite for RknnEngine::RebuildIndex vs concurrent queries.
// The original implementation rebuilt the hub point indices while
// HOLDING exclusive locks on both node domains, so every query stalled
// for the full label-scan build. The rebuild now happens off to the
// side — optimistic copy/build/install in lock mode, plain
// build-and-publish in snapshot mode — and queries must keep completing
// while a rebuild is in flight.
//
// The probe: a LabelStore wrapper that blocks inside Scan() once armed.
// HubPointIndex::Build scans the label of every live point's node, so
// an armed wrapper parks the rebuilding thread mid-build; the test then
// demands that a query on another thread still finishes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "core/engine.h"
#include "gen/grid.h"
#include "gen/points.h"
#include "index/hub_label.h"

namespace grnn::core {
namespace {

using std::chrono::milliseconds;

/// Delegates to an inner LabelStore; once armed, every Scan signals
/// entry and spins until released. Scan is const, so the control state
/// is atomic.
class BlockingLabelStore final : public index::LabelStore {
 public:
  explicit BlockingLabelStore(const index::LabelStore* inner)
      : inner_(inner) {}

  NodeId num_nodes() const override { return inner_->num_nodes(); }
  size_t num_entries() const override { return inner_->num_entries(); }

  Result<std::span<const index::HubEntry>> Scan(
      NodeId n, index::LabelCursor& cursor) const override {
    if (armed_.load()) {
      entered_.store(true);
      while (!released_.load()) {
        std::this_thread::sleep_for(milliseconds(1));
      }
    }
    return inner_->Scan(n, cursor);
  }

  void Arm() { armed_.store(true); }
  bool entered() const { return entered_.load(); }
  void Release() { released_.store(true); }

 private:
  const index::LabelStore* inner_;
  mutable std::atomic<bool> armed_{false};
  mutable std::atomic<bool> entered_{false};
  std::atomic<bool> released_{false};
};

// Address-stable world data; tests build a graph::GraphView over `g`
// locally (the view holds a raw Graph pointer).
struct RebuildWorld {
  graph::Graph g;
  NodePointSet points{0};
  index::HubLabelIndex labels;

  static RebuildWorld Make() {
    RebuildWorld w;
    gen::GridConfig cfg;
    cfg.rows = 12;
    cfg.cols = 12;
    cfg.seed = 7;
    w.g = gen::GenerateGrid(cfg).ValueOrDie();
    graph::GraphView view(&w.g);
    Rng rng(11);
    w.points =
        gen::PlaceNodePoints(w.g.num_nodes(), 0.3, rng).ValueOrDie();
    w.labels = index::HubLabelBuilder::Build(view).ValueOrDie();
    return w;
  }
};

void QueriesCompleteDuringRebuild(bool snapshot_reads) {
  RebuildWorld w = RebuildWorld::Make();
  graph::GraphView view(&w.g);
  BlockingLabelStore blocking(&w.labels);

  EngineSources sources;
  sources.graph = &view;
  sources.points = &w.points;
  sources.hub_labels = &blocking;
  sources.snapshot_reads = snapshot_reads;
  auto engine = RknnEngine::Create(sources).ValueOrDie();

  // Baseline: hub index built at Create (blocker disarmed), fresh.
  ASSERT_FALSE(engine.hub_index_stale());
  const QuerySpec eager_spec =
      QuerySpec::Monochromatic(Algorithm::kEager, 17, 2);
  const QuerySpec hub_spec =
      QuerySpec::Monochromatic(Algorithm::kHubLabel, 17, 2);
  auto baseline = engine.Run(eager_spec);
  ASSERT_TRUE(baseline.ok());

  blocking.Arm();
  std::thread rebuilder([&] {
    const Status s = engine.RebuildIndex();
    EXPECT_TRUE(s.ok()) << s.ToString();
  });
  // Wait until the rebuild thread is provably parked inside the label
  // scan of the index build.
  while (!blocking.entered()) {
    std::this_thread::sleep_for(milliseconds(1));
  }

  // THE regression check: with the rebuild mid-build, queries still
  // complete. A lock-holding rebuild would deadlock this future until
  // Release, and the wait below would time out.
  auto query = std::async(std::launch::async, [&] {
    return engine.Run(eager_spec);
  });
  ASSERT_EQ(query.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "query blocked behind an in-flight RebuildIndex";
  auto during = query.get();
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  EXPECT_EQ(during->results.size(), baseline->results.size());

  blocking.Release();
  rebuilder.join();

  // The rebuilt index serves hub queries, agreeing with eager.
  EXPECT_FALSE(engine.hub_index_stale());
  auto hub = engine.Run(hub_spec);
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  EXPECT_EQ(hub->stats.hub_fallbacks, 0u);
  EXPECT_EQ(hub->results.size(), baseline->results.size());
}

TEST(RebuildDuringServeTest, LockModeQueriesCompleteDuringRebuild) {
  QueriesCompleteDuringRebuild(/*snapshot_reads=*/false);
}

TEST(RebuildDuringServeTest, SnapshotModeQueriesCompleteDuringRebuild) {
  QueriesCompleteDuringRebuild(/*snapshot_reads=*/true);
}

// Lock mode only: updates racing a rebuild force the optimistic path to
// detect churn (node_gen moved) and either retry or fall back to the
// locked rebuild — the installed index must reflect the final sets.
TEST(RebuildDuringServeTest, LockModeRebuildSurvivesConcurrentUpdates) {
  RebuildWorld w = RebuildWorld::Make();
  graph::GraphView view(&w.g);

  EngineSources sources;
  sources.graph = &view;
  sources.points = &w.points;
  sources.hub_labels = &w.labels;
  sources.updates.points = &w.points;
  auto engine = RknnEngine::Create(sources).ValueOrDie();

  NodeId free_node = kInvalidNode;
  for (NodeId n = 0; n < w.g.num_nodes(); ++n) {
    if (!w.points.Contains(n)) {
      free_node = n;
      break;
    }
  }
  ASSERT_NE(free_node, kInvalidNode);

  std::atomic<bool> stop{false};
  std::thread updater([&] {
    // Toggle one node's point for the whole rebuild window: every
    // toggle bumps the generation counter the optimistic path checks.
    while (!stop.load()) {
      auto ins = engine.ApplyUpdate(UpdateSpec::InsertPoint(free_node));
      if (!ins.ok()) {
        continue;
      }
      ASSERT_TRUE(
          engine.ApplyUpdate(UpdateSpec::DeletePoint(ins->point)).ok());
    }
  });
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(engine.RebuildIndex().ok());
  }
  stop.store(true);
  updater.join();

  // Settle: one final rebuild over the quiesced sets, then hub == eager.
  ASSERT_TRUE(engine.RebuildIndex().ok());
  EXPECT_FALSE(engine.hub_index_stale());
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const NodeId q =
        static_cast<NodeId>(rng.UniformInt(w.g.num_nodes()));
    auto hub = engine.Run(
        QuerySpec::Monochromatic(Algorithm::kHubLabel, q, 2));
    auto eager = engine.Run(
        QuerySpec::Monochromatic(Algorithm::kEager, q, 2));
    ASSERT_TRUE(hub.ok());
    ASSERT_TRUE(eager.ok());
    EXPECT_EQ(hub->results, eager->results);
  }
}

}  // namespace
}  // namespace grnn::core
