// LabelFile round-trip and lease discipline: build -> persist -> reopen
// must answer identical Query(u,v) for sampled pairs on the paper's
// graph families, stored scans must match the in-memory index
// entry-for-entry on every page-size/pool configuration (zero-copy
// lease, copy-mode tiny pool, page-straddling labels), and no code path
// — including early exits — may leak a buffer-pool pin (the
// network_view_conformance pattern).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/brite.h"
#include "gen/grid.h"
#include "gen/road_network.h"
#include "graph/network_view.h"
#include "index/hub_label.h"
#include "index/label_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace grnn::index {
namespace {

graph::Graph WorldGraph(int family, uint64_t seed) {
  switch (family) {
    case 0: {
      gen::GridConfig cfg;
      cfg.rows = 8;
      cfg.cols = 8;
      cfg.avg_degree = 4.5;
      cfg.seed = seed;
      return gen::GenerateGrid(cfg).ValueOrDie();
    }
    case 1: {
      gen::BriteConfig cfg;
      cfg.num_nodes = 70;
      cfg.unit_weights = true;
      cfg.seed = seed;
      return gen::GenerateBrite(cfg).ValueOrDie();
    }
    default: {
      gen::RoadConfig cfg;
      cfg.num_nodes = 80;
      cfg.seed = seed;
      return gen::GenerateRoadNetwork(cfg).ValueOrDie().g;
    }
  }
}

HubLabelIndex BuildIndex(const graph::Graph& g) {
  graph::GraphView view(&g);
  return HubLabelBuilder::Build(view).ValueOrDie();
}

void ExpectStoredScansMatch(const HubLabelIndex& memory,
                            const LabelFile& file,
                            storage::BufferPool* pool) {
  StoredLabelIndex stored(&file, pool);
  ASSERT_EQ(stored.num_nodes(), memory.num_nodes());
  ASSERT_EQ(stored.num_entries(), memory.num_entries());
  LabelCursor cursor;
  for (NodeId n = 0; n < memory.num_nodes(); ++n) {
    auto span = stored.Scan(n, cursor).ValueOrDie();
    auto want = memory.Label(n);
    ASSERT_EQ(span.size(), want.size()) << "node " << n;
    EXPECT_TRUE(std::equal(span.begin(), span.end(), want.begin()))
        << "node " << n;
  }
  cursor.Reset();
  EXPECT_EQ(pool->num_pinned(), 0u);
}

TEST(LabelFile, StoredScansMatchMemoryOnAllWorlds) {
  for (int family = 0; family < 3; ++family) {
    auto g = WorldGraph(family, 1 + static_cast<uint64_t>(family));
    auto index = BuildIndex(g);
    // 512-byte pages: plenty of multi-label pages and some straddling
    // labels; 64-frame pool keeps the zero-copy lease path active.
    storage::MemoryDiskManager disk(512);
    auto file = LabelFile::Build(index, &disk).ValueOrDie();
    storage::BufferPool pool(&disk, 64);
    ExpectStoredScansMatch(index, file, &pool);
  }
}

TEST(LabelFile, TinyPagesForceStraddlingAndStillMatch) {
  auto g = WorldGraph(1, 5);
  auto index = BuildIndex(g);
  // 64-byte pages hold only 3 records behind the header, so most labels
  // straddle pages and take the assemble path.
  storage::MemoryDiskManager disk(64);
  auto file = LabelFile::Build(index, &disk).ValueOrDie();
  bool straddles = false;
  for (NodeId n = 0; n < index.num_nodes() && !straddles; ++n) {
    straddles = index.LabelSize(n) > 3;
  }
  EXPECT_TRUE(straddles) << "world too small to exercise straddling";
  storage::BufferPool pool(&disk, 64);
  ExpectStoredScansMatch(index, file, &pool);
}

TEST(LabelFile, CopyModePoolHoldsNoPins) {
  auto g = WorldGraph(0, 3);
  auto index = BuildIndex(g);
  storage::MemoryDiskManager disk(512);
  auto file = LabelFile::Build(index, &disk).ValueOrDie();
  // 8 frames < kMinFramesPerShardForLease: every scan copies + unpins.
  storage::BufferPool pool(&disk, 8);
  ASSERT_FALSE(pool.lease_friendly());
  StoredLabelIndex stored(&file, &pool);
  LabelCursor cursor;
  for (NodeId n = 0; n < stored.num_nodes(); ++n) {
    auto span = stored.Scan(n, cursor).ValueOrDie();
    auto want = index.Label(n);
    ASSERT_EQ(span.size(), want.size());
    EXPECT_TRUE(std::equal(span.begin(), span.end(), want.begin()));
    EXPECT_EQ(cursor.held_pins(), 0u) << "node " << n;
  }
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(LabelFile, LeaseHeldWhileSpanLiveThenReleased) {
  auto g = WorldGraph(2, 4);
  auto index = BuildIndex(g);
  storage::MemoryDiskManager disk(512);
  auto file = LabelFile::Build(index, &disk).ValueOrDie();
  storage::BufferPool pool(&disk, 64);
  ASSERT_TRUE(pool.lease_friendly());
  StoredLabelIndex stored(&file, &pool);
  LabelCursor cursor;
  // Find a node whose label fits one page (the zero-copy path).
  for (NodeId n = 0; n < stored.num_nodes(); ++n) {
    if (index.LabelSize(n) == 0 || index.LabelSize(n) > 31) {
      continue;
    }
    auto span = stored.Scan(n, cursor).ValueOrDie();
    ASSERT_FALSE(span.empty());
    EXPECT_EQ(cursor.held_pins(), 1u);
    EXPECT_GE(pool.num_pinned(), 1u);
    cursor.Reset();
    EXPECT_EQ(cursor.held_pins(), 0u);
    break;
  }
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(LabelFile, EarlyExitPathsLeakNoPins) {
  auto g = WorldGraph(0, 6);
  auto index = BuildIndex(g);
  storage::MemoryDiskManager disk(512);
  auto file = LabelFile::Build(index, &disk).ValueOrDie();
  storage::BufferPool pool(&disk, 64);
  StoredLabelIndex stored(&file, &pool);
  LabelCursor cursor, aux;
  // Take a live lease first, then fail: the rejected scan leaves the
  // previous span (and its pin) intact — exactly the NeighborCursor
  // semantics — and Reset/destruction still drops everything.
  ASSERT_TRUE(stored.Scan(0, cursor).ok());
  EXPECT_TRUE(
      stored.Scan(stored.num_nodes(), cursor).status().IsOutOfRange());
  EXPECT_LE(cursor.held_pins(), 1u);
  cursor.Reset();
  EXPECT_EQ(cursor.held_pins(), 0u);
  EXPECT_EQ(pool.num_pinned(), 0u);
  // Pairwise lookup with a bad second node: the first scan's lease is
  // owned by its cursor and released by Reset, not leaked.
  EXPECT_FALSE(
      QueryViaStore(stored, 1, stored.num_nodes(), cursor, aux).ok());
  cursor.Reset();
  aux.Reset();
  EXPECT_EQ(pool.num_pinned(), 0u);
  // Null pool rejected before any acquire.
  EXPECT_TRUE(file.ScanLabel(nullptr, 0, cursor)
                  .status()
                  .IsInvalidArgument());
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(LabelFile, FileDiskRoundTripAnswersIdenticalQueries) {
  for (int family = 0; family < 3; ++family) {
    const uint64_t seed = 11 + static_cast<uint64_t>(family);
    auto g = WorldGraph(family, seed);
    auto index = BuildIndex(g);
    const std::string path = testing::TempDir() + "/grnn_labels_" +
                             std::to_string(family) + ".pages";
    std::remove(path.c_str());
    PageId first_page = kInvalidPage;
    {
      auto disk = storage::FileDiskManager::Open(path).ValueOrDie();
      auto file = LabelFile::Build(index, &disk).ValueOrDie();
      first_page = file.first_page();
    }
    // Reopen from disk: the directory alone must reconstruct the index.
    auto disk = storage::FileDiskManager::Open(path).ValueOrDie();
    auto file = LabelFile::Open(&disk, first_page).ValueOrDie();
    ASSERT_EQ(file.num_nodes(), index.num_nodes());
    ASSERT_EQ(file.num_entries(), index.num_entries());
    storage::BufferPool pool(&disk, 64);
    StoredLabelIndex stored(&file, &pool);
    LabelCursor cu, cv;
    Rng rng(seed * 77 + 1);
    for (int i = 0; i < 200; ++i) {
      NodeId u = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      // Identical, not just close: the reopened file serves the same
      // label bytes, so the merged distance is bit-for-bit equal.
      EXPECT_EQ(QueryViaStore(stored, u, v, cu, cv).ValueOrDie(),
                index.Query(u, v))
          << "family=" << family << " u=" << u << " v=" << v;
    }
    cu.Reset();
    cv.Reset();
    EXPECT_EQ(pool.num_pinned(), 0u);
    std::remove(path.c_str());
  }
}

TEST(LabelFile, OpenRejectsCorruptHeaders) {
  auto g = WorldGraph(0, 9);
  auto index = BuildIndex(g);
  storage::MemoryDiskManager disk(512);
  auto file = LabelFile::Build(index, &disk).ValueOrDie();
  // Wrong first page (a data page): bad magic.
  EXPECT_TRUE(LabelFile::Open(&disk, file.first_page() + 1)
                  .status()
                  .IsCorruption());
  // Out-of-range page id.
  EXPECT_TRUE(
      LabelFile::Open(&disk, static_cast<PageId>(disk.num_pages()))
          .status()
          .IsOutOfRange());
}

// ---------------------------------------------------------------------
// v3 delta layout (LabelLayout::kDelta): varint hub-id deltas + grouped
// raw distances. Decode-only — scans must still match the memory index
// entry-for-entry, but never hold a lease, and in-place maintenance is
// rejected outright.

TEST(LabelFileDelta, StoredScansMatchMemoryOnAllWorlds) {
  for (int family = 0; family < 3; ++family) {
    auto g = WorldGraph(family, 31 + static_cast<uint64_t>(family));
    auto index = BuildIndex(g);
    storage::MemoryDiskManager disk(512);
    auto file =
        LabelFile::Build(index, &disk, LabelLayout::kDelta).ValueOrDie();
    ASSERT_EQ(file.layout(), LabelLayout::kDelta);
    storage::BufferPool pool(&disk, 64);
    ExpectStoredScansMatch(index, file, &pool);
  }
}

TEST(LabelFileDelta, ScansNeverLeaseAndTinyPagesStraddle) {
  auto g = WorldGraph(1, 35);
  auto index = BuildIndex(g);
  // 64-byte pages leave 48 payload bytes; any label beyond a handful of
  // entries spills onto follow-up pages and takes the byte-assembly path.
  storage::MemoryDiskManager disk(64);
  auto file =
      LabelFile::Build(index, &disk, LabelLayout::kDelta).ValueOrDie();
  storage::BufferPool pool(&disk, 64);
  ASSERT_TRUE(pool.lease_friendly());
  StoredLabelIndex stored(&file, &pool);
  LabelCursor cursor;
  for (NodeId n = 0; n < stored.num_nodes(); ++n) {
    auto span = stored.Scan(n, cursor).ValueOrDie();
    auto want = index.Label(n);
    ASSERT_EQ(span.size(), want.size()) << "node " << n;
    EXPECT_TRUE(std::equal(span.begin(), span.end(), want.begin()))
        << "node " << n;
    // Delta scans decode into scratch even on lease-friendly pools.
    EXPECT_EQ(cursor.held_pins(), 0u) << "node " << n;
  }
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(LabelFileDelta, QueriesBitEqualToRecordsLayout) {
  for (int family = 0; family < 3; ++family) {
    const uint64_t seed = 41 + static_cast<uint64_t>(family);
    auto g = WorldGraph(family, seed);
    auto index = BuildIndex(g);
    storage::MemoryDiskManager disk(512);
    auto records = LabelFile::Build(index, &disk).ValueOrDie();
    auto delta =
        LabelFile::Build(index, &disk, LabelLayout::kDelta).ValueOrDie();
    // Same entries, same pages discipline — the delta file must be
    // strictly smaller (that is its whole reason to exist)...
    EXPECT_LT(delta.num_pages(), records.num_pages());
    storage::BufferPool pool(&disk, 64);
    StoredLabelIndex sr(&records, &pool);
    StoredLabelIndex sd(&delta, &pool);
    LabelCursor au, av, bu, bv;
    Rng rng(seed * 13 + 5);
    for (int i = 0; i < 200; ++i) {
      NodeId u = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      // ...while serving bit-identical merged distances: raw 8-byte
      // doubles round-trip exactly through the blob.
      EXPECT_EQ(QueryViaStore(sr, u, v, au, av).ValueOrDie(),
                QueryViaStore(sd, u, v, bu, bv).ValueOrDie())
          << "family=" << family << " u=" << u << " v=" << v;
    }
    au.Reset();
    av.Reset();
    bu.Reset();
    bv.Reset();
    EXPECT_EQ(pool.num_pinned(), 0u);
  }
}

TEST(LabelFileDelta, FileDiskReopenPreservesLayoutAndBytes) {
  auto g = WorldGraph(2, 51);
  auto index = BuildIndex(g);
  const std::string path = testing::TempDir() + "/grnn_labels_v3.pages";
  std::remove(path.c_str());
  PageId first_page = kInvalidPage;
  size_t built_pages = 0;
  {
    auto disk = storage::FileDiskManager::Open(path).ValueOrDie();
    auto file =
        LabelFile::Build(index, &disk, LabelLayout::kDelta).ValueOrDie();
    first_page = file.first_page();
    built_pages = file.num_pages();
  }
  auto disk = storage::FileDiskManager::Open(path).ValueOrDie();
  auto file = LabelFile::Open(&disk, first_page).ValueOrDie();
  // The header alone reconstructs the layout and the byte-granular node
  // index; every label must come back entry-for-entry.
  EXPECT_EQ(file.layout(), LabelLayout::kDelta);
  EXPECT_EQ(file.num_pages(), built_pages);
  ASSERT_EQ(file.num_nodes(), index.num_nodes());
  ASSERT_EQ(file.num_entries(), index.num_entries());
  storage::BufferPool pool(&disk, 64);
  ExpectStoredScansMatch(index, file, &pool);
  std::remove(path.c_str());
}

TEST(LabelFileDelta, RewriteAndReplayAreRejected) {
  auto g = WorldGraph(0, 61);
  auto index = BuildIndex(g);
  storage::MemoryDiskManager disk(512);
  auto file =
      LabelFile::Build(index, &disk, LabelLayout::kDelta).ValueOrDie();
  storage::BufferPool pool(&disk, 64);
  // Pick a node with a non-empty label and try to rewrite it in place
  // with its own (count-preserving) entries: still rejected, because
  // variable-length blobs cannot be patched.
  NodeId victim = kInvalidNode;
  for (NodeId n = 0; n < index.num_nodes(); ++n) {
    if (index.LabelSize(n) > 0) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  std::vector<HubEntry> same(index.Label(victim).begin(),
                             index.Label(victim).end());
  EXPECT_EQ(file.RewriteLabel(&pool, victim, same, /*lsn=*/7).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(file.ReplayLabel(&disk, victim, same, /*lsn=*/7).status().code(),
            StatusCode::kFailedPrecondition);
  // The file is untouched: scans still match the memory index.
  ExpectStoredScansMatch(index, file, &pool);
}

TEST(LabelFile, BuildValidatesInput) {
  auto g = WorldGraph(0, 2);
  auto index = BuildIndex(g);
  EXPECT_TRUE(
      LabelFile::Build(index, nullptr).status().IsInvalidArgument());
  HubLabelIndex empty;
  storage::MemoryDiskManager disk(512);
  EXPECT_TRUE(
      LabelFile::Build(empty, &disk).status().IsInvalidArgument());
}

}  // namespace
}  // namespace grnn::index
