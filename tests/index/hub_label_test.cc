// Hub-label subsystem: builder exactness and determinism, Query(u,v)
// against the Dijkstra oracle, and the kNN / RkNN label primitives
// against the brute-force semantics of core/types.h.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/brute_force.h"
#include "core/bichromatic.h"
#include "graph/dijkstra.h"
#include "graph/network_view.h"
#include "index/hub_label.h"
#include "index/hub_point_index.h"
#include "index/hub_rknn.h"
#include "test_fixtures.h"

namespace grnn::index {
namespace {

using core::testfix::Ids;
using core::testfix::PaperExample;
using core::testfix::RandomConnectedGraph;
using core::testfix::RandomPoints;

void ExpectAllPairsExact(const graph::Graph& g,
                         const HubLabelIndex& index) {
  graph::GraphView view(&g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto dist = graph::SingleSourceDistances(view, u).ValueOrDie();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const Weight got = index.Query(u, v);
      if (dist[v] == kInfinity) {
        EXPECT_EQ(got, kInfinity) << "u=" << u << " v=" << v;
      } else {
        EXPECT_NEAR(got, dist[v], 1e-9) << "u=" << u << " v=" << v;
      }
    }
  }
}

TEST(HubLabelBuilder, PaperExampleAllPairsExact) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  EXPECT_EQ(index.num_nodes(), f.g.num_nodes());
  ExpectAllPairsExact(f.g, index);
}

TEST(HubLabelBuilder, SelfDistanceIsZero) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  for (NodeId u = 0; u < f.g.num_nodes(); ++u) {
    EXPECT_EQ(index.Query(u, u), 0.0);
  }
}

TEST(HubLabelBuilder, RandomWorldsAllPairsExact) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    const bool unit = seed % 2 == 0;
    auto g = RandomConnectedGraph(60, 0.5, rng, unit);
    graph::GraphView view(&g);
    auto index = HubLabelBuilder::Build(view).ValueOrDie();
    ExpectAllPairsExact(g, index);
  }
}

TEST(HubLabelBuilder, RandomHubOrderStaysExact) {
  Rng rng(7);
  auto g = RandomConnectedGraph(40, 0.8, rng);
  graph::GraphView view(&g);
  HubLabelBuildOptions options;
  options.order = HubOrder::kRandom;
  options.seed = 99;
  auto index = HubLabelBuilder::Build(view, options).ValueOrDie();
  ExpectAllPairsExact(g, index);
}

TEST(HubLabelBuilder, DisconnectedPairsReportInfinity) {
  // Two 3-node components.
  auto g = graph::Graph::FromEdges(
               6, {{0, 1, 1.0}, {1, 2, 2.0}, {3, 4, 1.0}, {4, 5, 2.0}})
               .ValueOrDie();
  graph::GraphView view(&g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  ExpectAllPairsExact(g, index);
  EXPECT_EQ(index.Query(0, 5), kInfinity);
}

TEST(HubLabelBuilder, DeterministicAcrossBuilds) {
  Rng rng(11);
  auto g = RandomConnectedGraph(50, 0.7, rng);
  graph::GraphView view(&g);
  auto a = HubLabelBuilder::Build(view).ValueOrDie();
  auto b = HubLabelBuilder::Build(view).ValueOrDie();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_entries(), b.num_entries());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    auto la = a.Label(n);
    auto lb = b.Label(n);
    ASSERT_EQ(la.size(), lb.size()) << "node " << n;
    for (size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i], lb[i]) << "node " << n << " slot " << i;
    }
  }
}

TEST(HubLabelBuilder, LabelsSortedByHubAndCoverSelf) {
  Rng rng(13);
  auto g = RandomConnectedGraph(45, 0.6, rng);
  graph::GraphView view(&g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  for (NodeId n = 0; n < index.num_nodes(); ++n) {
    auto label = index.Label(n);
    bool has_self = false;
    for (size_t i = 0; i < label.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(label[i - 1].hub, label[i].hub);
      }
      has_self = has_self || (label[i].hub == n && label[i].dist == 0.0);
    }
    EXPECT_TRUE(has_self) << "node " << n;
  }
}

TEST(HubLabelBuilder, EmptyGraphRejected) {
  graph::Graph g;
  graph::GraphView view(&g);
  EXPECT_FALSE(HubLabelBuilder::Build(view).ok());
}

TEST(HubLabelIndex, ScanMatchesLabelAndRangeChecks) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  LabelCursor cursor;
  for (NodeId n = 0; n < index.num_nodes(); ++n) {
    auto span = index.Scan(n, cursor).ValueOrDie();
    auto want = index.Label(n);
    ASSERT_EQ(span.size(), want.size());
    EXPECT_TRUE(std::equal(span.begin(), span.end(), want.begin()));
  }
  EXPECT_TRUE(index.Scan(index.num_nodes(), cursor)
                  .status()
                  .IsOutOfRange());
  EXPECT_EQ(cursor.held_pins(), 0u);
}

TEST(QueryViaStore, MatchesDirectQuery) {
  Rng rng(17);
  auto g = RandomConnectedGraph(30, 0.5, rng);
  graph::GraphView view(&g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  LabelCursor cu, cv;
  for (int i = 0; i < 50; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    EXPECT_EQ(QueryViaStore(index, u, v, cu, cv).ValueOrDie(),
              index.Query(u, v));
  }
}

TEST(KnnViaLabels, MatchesDijkstraOrderedDistances) {
  for (uint64_t seed : {3u, 4u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(50, 0.6, rng, seed % 2 == 0);
    graph::GraphView view(&g);
    auto points = RandomPoints(g.num_nodes(), 12, rng);
    auto index = HubLabelBuilder::Build(view).ValueOrDie();
    auto occ = HubPointIndex::Build(index, points).ValueOrDie();
    LabelWorkspace ws;
    std::vector<core::NnResult> got;
    for (NodeId q = 0; q < g.num_nodes(); q += 7) {
      auto dist = graph::SingleSourceDistances(view, q).ValueOrDie();
      for (int k : {1, 3, 5}) {
        for (PointId exclude :
             {kInvalidPoint, static_cast<PointId>(0)}) {
          ASSERT_TRUE(
              KnnViaLabelsInto(index, occ, q, k, exclude, ws, &got).ok());
          // Oracle: all live points by (dist, id), exclude removed.
          std::vector<std::pair<Weight, PointId>> want;
          for (PointId p : points.LivePoints()) {
            if (p == exclude || dist[points.NodeOf(p)] == kInfinity) {
              continue;
            }
            want.push_back({dist[points.NodeOf(p)], p});
          }
          std::sort(want.begin(), want.end());
          const size_t expect_n =
              std::min<size_t>(want.size(), static_cast<size_t>(k));
          ASSERT_EQ(got.size(), expect_n) << "q=" << q << " k=" << k;
          for (size_t i = 0; i < expect_n; ++i) {
            EXPECT_NEAR(got[i].dist, want[i].first, 1e-9)
                << "q=" << q << " k=" << k << " slot=" << i;
          }
        }
      }
    }
    EXPECT_EQ(ws.held_pins(), 0u);
  }
}

TEST(RknnViaLabels, MonochromaticMatchesBruteForce) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(60, 0.5, rng, seed % 2 == 1);
    graph::GraphView view(&g);
    auto points = RandomPoints(g.num_nodes(), 14, rng);
    auto index = HubLabelBuilder::Build(view).ValueOrDie();
    auto occ = HubPointIndex::Build(index, points).ValueOrDie();
    LabelWorkspace ws;
    auto live = points.LivePoints();
    for (int rep = 0; rep < 20; ++rep) {
      const bool self = rep % 2 == 0;
      core::RknnOptions options;
      options.k = 1 + rep % 3;
      NodeId q;
      if (self) {
        PointId qp = live[rng.UniformInt(live.size())];
        options.exclude_point = qp;
        q = points.NodeOf(qp);
      } else {
        q = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      }
      auto got =
          RknnViaLabels(index, occ, occ, {&q, 1}, options, ws)
              .ValueOrDie();
      auto want =
          core::BruteForceRknn(view, points, {&q, 1}, options)
              .ValueOrDie();
      EXPECT_EQ(Ids(got), Ids(want))
          << "seed=" << seed << " rep=" << rep << " k=" << options.k;
      EXPECT_EQ(ws.held_pins(), 0u);
    }
  }
}

TEST(RknnViaLabels, BichromaticMatchesBruteForce) {
  for (uint64_t seed : {8u, 9u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(60, 0.5, rng, seed % 2 == 0);
    graph::GraphView view(&g);
    // Disjoint placements, as the differential worlds do.
    auto nodes = rng.SampleWithoutReplacement(g.num_nodes(), 20);
    std::vector<NodeId> p_locs(nodes.begin(), nodes.begin() + 13);
    std::vector<NodeId> q_locs(nodes.begin() + 13, nodes.end());
    auto points =
        core::NodePointSet::FromLocations(g.num_nodes(), p_locs)
            .ValueOrDie();
    auto sites =
        core::NodePointSet::FromLocations(g.num_nodes(), q_locs)
            .ValueOrDie();
    auto index = HubLabelBuilder::Build(view).ValueOrDie();
    auto occ_p = HubPointIndex::Build(index, points).ValueOrDie();
    auto occ_q = HubPointIndex::Build(index, sites).ValueOrDie();
    LabelWorkspace ws;
    auto live_sites = sites.LivePoints();
    for (int rep = 0; rep < 20; ++rep) {
      core::RknnOptions options;
      options.k = 1 + rep % 3;
      NodeId q;
      if (rep % 2 == 0) {
        PointId qs = live_sites[rng.UniformInt(live_sites.size())];
        options.exclude_point = qs;
        q = sites.NodeOf(qs);
      } else {
        q = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      }
      auto got =
          RknnViaLabels(index, occ_p, occ_q, {&q, 1}, options, ws)
              .ValueOrDie();
      auto want = core::BruteForceBichromaticRknn(view, points, sites,
                                                  {&q, 1}, options)
                      .ValueOrDie();
      EXPECT_EQ(Ids(got), Ids(want))
          << "seed=" << seed << " rep=" << rep << " k=" << options.k;
    }
  }
}

TEST(RknnViaLabels, ValidatesInput) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  auto occ = HubPointIndex::Build(index, f.points).ValueOrDie();
  LabelWorkspace ws;
  core::RknnOptions options;
  options.k = 0;
  NodeId q = 0;
  EXPECT_TRUE(RknnViaLabels(index, occ, occ, {&q, 1}, options, ws)
                  .status()
                  .IsInvalidArgument());
  options.k = 1;
  NodeId bad = f.g.num_nodes();
  EXPECT_TRUE(RknnViaLabels(index, occ, occ, {&bad, 1}, options, ws)
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(
      RknnViaLabels(index, occ, occ, {}, options, ws)
          .status()
          .IsInvalidArgument());
}

}  // namespace
}  // namespace grnn::index
