// Hub-label subsystem: builder exactness and determinism, Query(u,v)
// against the Dijkstra oracle, and the kNN / RkNN label primitives
// against the brute-force semantics of core/types.h.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"
#include "core/brute_force.h"
#include "core/bichromatic.h"
#include "graph/dijkstra.h"
#include "graph/network_view.h"
#include "index/hub_label.h"
#include "index/hub_point_index.h"
#include "index/hub_rknn.h"
#include "index/packed_labels.h"
#include "test_fixtures.h"

namespace grnn::index {
namespace {

using core::testfix::Ids;
using core::testfix::PaperExample;
using core::testfix::RandomConnectedGraph;
using core::testfix::RandomPoints;

void ExpectAllPairsExact(const graph::Graph& g,
                         const HubLabelIndex& index) {
  graph::GraphView view(&g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto dist = graph::SingleSourceDistances(view, u).ValueOrDie();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const Weight got = index.Query(u, v);
      if (dist[v] == kInfinity) {
        EXPECT_EQ(got, kInfinity) << "u=" << u << " v=" << v;
      } else {
        EXPECT_NEAR(got, dist[v], 1e-9) << "u=" << u << " v=" << v;
      }
    }
  }
}

TEST(HubLabelBuilder, PaperExampleAllPairsExact) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  EXPECT_EQ(index.num_nodes(), f.g.num_nodes());
  ExpectAllPairsExact(f.g, index);
}

TEST(HubLabelBuilder, SelfDistanceIsZero) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  for (NodeId u = 0; u < f.g.num_nodes(); ++u) {
    EXPECT_EQ(index.Query(u, u), 0.0);
  }
}

TEST(HubLabelBuilder, RandomWorldsAllPairsExact) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    const bool unit = seed % 2 == 0;
    auto g = RandomConnectedGraph(60, 0.5, rng, unit);
    graph::GraphView view(&g);
    auto index = HubLabelBuilder::Build(view).ValueOrDie();
    ExpectAllPairsExact(g, index);
  }
}

TEST(HubLabelBuilder, RandomHubOrderStaysExact) {
  Rng rng(7);
  auto g = RandomConnectedGraph(40, 0.8, rng);
  graph::GraphView view(&g);
  HubLabelBuildOptions options;
  options.order = HubOrder::kRandom;
  options.seed = 99;
  auto index = HubLabelBuilder::Build(view, options).ValueOrDie();
  ExpectAllPairsExact(g, index);
}

TEST(HubLabelBuilder, DisconnectedPairsReportInfinity) {
  // Two 3-node components.
  auto g = graph::Graph::FromEdges(
               6, {{0, 1, 1.0}, {1, 2, 2.0}, {3, 4, 1.0}, {4, 5, 2.0}})
               .ValueOrDie();
  graph::GraphView view(&g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  ExpectAllPairsExact(g, index);
  EXPECT_EQ(index.Query(0, 5), kInfinity);
}

TEST(HubLabelBuilder, DeterministicAcrossBuilds) {
  Rng rng(11);
  auto g = RandomConnectedGraph(50, 0.7, rng);
  graph::GraphView view(&g);
  auto a = HubLabelBuilder::Build(view).ValueOrDie();
  auto b = HubLabelBuilder::Build(view).ValueOrDie();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_entries(), b.num_entries());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    auto la = a.Label(n);
    auto lb = b.Label(n);
    ASSERT_EQ(la.size(), lb.size()) << "node " << n;
    for (size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i], lb[i]) << "node " << n << " slot " << i;
    }
  }
}

TEST(HubLabelBuilder, LabelsSortedByHubAndCoverSelf) {
  Rng rng(13);
  auto g = RandomConnectedGraph(45, 0.6, rng);
  graph::GraphView view(&g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  for (NodeId n = 0; n < index.num_nodes(); ++n) {
    auto label = index.Label(n);
    bool has_self = false;
    for (size_t i = 0; i < label.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(label[i - 1].hub, label[i].hub);
      }
      has_self = has_self || (label[i].hub == n && label[i].dist == 0.0);
    }
    EXPECT_TRUE(has_self) << "node " << n;
  }
}

TEST(HubLabelBuilder, EmptyGraphRejected) {
  graph::Graph g;
  graph::GraphView view(&g);
  EXPECT_FALSE(HubLabelBuilder::Build(view).ok());
}

TEST(HubLabelIndex, ScanMatchesLabelAndRangeChecks) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  LabelCursor cursor;
  for (NodeId n = 0; n < index.num_nodes(); ++n) {
    auto span = index.Scan(n, cursor).ValueOrDie();
    auto want = index.Label(n);
    ASSERT_EQ(span.size(), want.size());
    EXPECT_TRUE(std::equal(span.begin(), span.end(), want.begin()));
  }
  EXPECT_TRUE(index.Scan(index.num_nodes(), cursor)
                  .status()
                  .IsOutOfRange());
  EXPECT_EQ(cursor.held_pins(), 0u);
}

TEST(QueryViaStore, MatchesDirectQuery) {
  Rng rng(17);
  auto g = RandomConnectedGraph(30, 0.5, rng);
  graph::GraphView view(&g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  LabelCursor cu, cv;
  for (int i = 0; i < 50; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    EXPECT_EQ(QueryViaStore(index, u, v, cu, cv).ValueOrDie(),
              index.Query(u, v));
  }
}

TEST(KnnViaLabels, MatchesDijkstraOrderedDistances) {
  for (uint64_t seed : {3u, 4u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(50, 0.6, rng, seed % 2 == 0);
    graph::GraphView view(&g);
    auto points = RandomPoints(g.num_nodes(), 12, rng);
    auto index = HubLabelBuilder::Build(view).ValueOrDie();
    auto occ = HubPointIndex::Build(index, points).ValueOrDie();
    LabelWorkspace ws;
    std::vector<core::NnResult> got;
    for (NodeId q = 0; q < g.num_nodes(); q += 7) {
      auto dist = graph::SingleSourceDistances(view, q).ValueOrDie();
      for (int k : {1, 3, 5}) {
        for (PointId exclude :
             {kInvalidPoint, static_cast<PointId>(0)}) {
          ASSERT_TRUE(
              KnnViaLabelsInto(index, occ, q, k, exclude, ws, &got).ok());
          // Oracle: all live points by (dist, id), exclude removed.
          std::vector<std::pair<Weight, PointId>> want;
          for (PointId p : points.LivePoints()) {
            if (p == exclude || dist[points.NodeOf(p)] == kInfinity) {
              continue;
            }
            want.push_back({dist[points.NodeOf(p)], p});
          }
          std::sort(want.begin(), want.end());
          const size_t expect_n =
              std::min<size_t>(want.size(), static_cast<size_t>(k));
          ASSERT_EQ(got.size(), expect_n) << "q=" << q << " k=" << k;
          for (size_t i = 0; i < expect_n; ++i) {
            EXPECT_NEAR(got[i].dist, want[i].first, 1e-9)
                << "q=" << q << " k=" << k << " slot=" << i;
          }
        }
      }
    }
    EXPECT_EQ(ws.held_pins(), 0u);
  }
}

TEST(RknnViaLabels, MonochromaticMatchesBruteForce) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(60, 0.5, rng, seed % 2 == 1);
    graph::GraphView view(&g);
    auto points = RandomPoints(g.num_nodes(), 14, rng);
    auto index = HubLabelBuilder::Build(view).ValueOrDie();
    auto occ = HubPointIndex::Build(index, points).ValueOrDie();
    LabelWorkspace ws;
    auto live = points.LivePoints();
    for (int rep = 0; rep < 20; ++rep) {
      const bool self = rep % 2 == 0;
      core::RknnOptions options;
      options.k = 1 + rep % 3;
      NodeId q;
      if (self) {
        PointId qp = live[rng.UniformInt(live.size())];
        options.exclude_point = qp;
        q = points.NodeOf(qp);
      } else {
        q = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      }
      auto got =
          RknnViaLabels(index, occ, occ, {&q, 1}, options, ws)
              .ValueOrDie();
      auto want =
          core::BruteForceRknn(view, points, {&q, 1}, options)
              .ValueOrDie();
      EXPECT_EQ(Ids(got), Ids(want))
          << "seed=" << seed << " rep=" << rep << " k=" << options.k;
      EXPECT_EQ(ws.held_pins(), 0u);
    }
  }
}

TEST(RknnViaLabels, BichromaticMatchesBruteForce) {
  for (uint64_t seed : {8u, 9u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(60, 0.5, rng, seed % 2 == 0);
    graph::GraphView view(&g);
    // Disjoint placements, as the differential worlds do.
    auto nodes = rng.SampleWithoutReplacement(g.num_nodes(), 20);
    std::vector<NodeId> p_locs(nodes.begin(), nodes.begin() + 13);
    std::vector<NodeId> q_locs(nodes.begin() + 13, nodes.end());
    auto points =
        core::NodePointSet::FromLocations(g.num_nodes(), p_locs)
            .ValueOrDie();
    auto sites =
        core::NodePointSet::FromLocations(g.num_nodes(), q_locs)
            .ValueOrDie();
    auto index = HubLabelBuilder::Build(view).ValueOrDie();
    auto occ_p = HubPointIndex::Build(index, points).ValueOrDie();
    auto occ_q = HubPointIndex::Build(index, sites).ValueOrDie();
    LabelWorkspace ws;
    auto live_sites = sites.LivePoints();
    for (int rep = 0; rep < 20; ++rep) {
      core::RknnOptions options;
      options.k = 1 + rep % 3;
      NodeId q;
      if (rep % 2 == 0) {
        PointId qs = live_sites[rng.UniformInt(live_sites.size())];
        options.exclude_point = qs;
        q = sites.NodeOf(qs);
      } else {
        q = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      }
      auto got =
          RknnViaLabels(index, occ_p, occ_q, {&q, 1}, options, ws)
              .ValueOrDie();
      auto want = core::BruteForceBichromaticRknn(view, points, sites,
                                                  {&q, 1}, options)
                      .ValueOrDie();
      EXPECT_EQ(Ids(got), Ids(want))
          << "seed=" << seed << " rep=" << rep << " k=" << options.k;
    }
  }
}

TEST(RknnViaLabels, ValidatesInput) {
  auto f = PaperExample();
  graph::GraphView view(&f.g);
  auto index = HubLabelBuilder::Build(view).ValueOrDie();
  auto occ = HubPointIndex::Build(index, f.points).ValueOrDie();
  LabelWorkspace ws;
  core::RknnOptions options;
  options.k = 0;
  NodeId q = 0;
  EXPECT_TRUE(RknnViaLabels(index, occ, occ, {&q, 1}, options, ws)
                  .status()
                  .IsInvalidArgument());
  options.k = 1;
  NodeId bad = f.g.num_nodes();
  EXPECT_TRUE(RknnViaLabels(index, occ, occ, {&bad, 1}, options, ws)
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(
      RknnViaLabels(index, occ, occ, {}, options, ws)
          .status()
          .IsInvalidArgument());
}

// Bit-for-bit equality of two occurrence indexes: counters and every
// per-hub (dist, point)-sorted run.
void ExpectIdentical(const HubPointIndex& got, const HubPointIndex& want) {
  ASSERT_EQ(got.num_hubs(), want.num_hubs());
  EXPECT_EQ(got.num_entries(), want.num_entries());
  EXPECT_EQ(got.num_points(), want.num_points());
  EXPECT_EQ(got.point_id_bound(), want.point_id_bound());
  for (NodeId h = 0; h < want.num_hubs(); ++h) {
    auto a = got.ListOf(h);
    auto b = want.ListOf(h);
    ASSERT_EQ(a.size(), b.size()) << "hub=" << h;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "hub=" << h << " entry=" << i;
    }
  }
}

TEST(HubPointIndex, IncrementalNodeOpsMatchFromScratchBuild) {
  for (uint64_t seed : {11u, 12u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(40, 0.5, rng, seed % 2 == 0);
    graph::GraphView view(&g);
    auto labels = HubLabelBuilder::Build(view).ValueOrDie();
    auto points = RandomPoints(g.num_nodes(), 8, rng);
    auto occ = HubPointIndex::Build(labels, points).ValueOrDie();

    // Interleave inserts and deletes; after every op the spliced index
    // must equal a from-scratch Build over the mutated set, bit for bit.
    for (int op = 0; op < 12; ++op) {
      if (op % 3 == 2) {
        auto live = points.LivePoints();
        PointId victim = live[rng.UniformInt(live.size())];
        const NodeId host = points.NodeOf(victim);
        ASSERT_TRUE(points.RemovePoint(victim).ok());
        ASSERT_TRUE(occ.ErasePoint(labels, victim, host).ok());
      } else {
        NodeId n = kInvalidNode;
        do {
          n = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
        } while (points.Contains(n));
        PointId p = points.AddPoint(n).ValueOrDie();
        ASSERT_TRUE(occ.InsertPoint(labels, p, n).ok());
      }
      auto want = HubPointIndex::Build(labels, points).ValueOrDie();
      ExpectIdentical(occ, want);
    }
  }
}

TEST(HubPointIndex, IncrementalEdgeOpsMatchFromScratchBuild) {
  for (uint64_t seed : {13u, 14u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(40, 0.5, rng, seed % 2 == 1);
    graph::GraphView view(&g);
    auto labels = HubLabelBuilder::Build(view).ValueOrDie();
    auto edges = g.CollectEdges();
    std::vector<core::EdgePosition> positions;
    for (size_t i = 0; i < 8; ++i) {
      const Edge& e = edges[rng.UniformInt(edges.size())];
      positions.push_back({e.u, e.v, rng.Uniform(0.0, e.w)});
    }
    auto points = core::EdgePointSet::Create(g, positions).ValueOrDie();
    auto occ = HubPointIndex::Build(labels, points).ValueOrDie();

    for (int op = 0; op < 12; ++op) {
      if (op % 3 == 2) {
        auto live = points.LivePoints();
        PointId victim = live[rng.UniformInt(live.size())];
        // Capture BEFORE the removal tombstones the position away.
        const core::EdgePosition pos = points.PositionOf(victim);
        const Weight ew = points.EdgeWeightOfPoint(victim);
        ASSERT_TRUE(points.RemovePoint(victim).ok());
        ASSERT_TRUE(occ.EraseEdgePoint(labels, victim, pos, ew).ok());
      } else {
        const Edge& e = edges[rng.UniformInt(edges.size())];
        PointId p =
            points.AddPoint(g, {e.u, e.v, rng.Uniform(0.0, e.w)})
                .ValueOrDie();
        ASSERT_TRUE(occ.InsertEdgePoint(labels, p,
                                        points.PositionOf(p),
                                        points.EdgeWeightOfPoint(p))
                        .ok());
      }
      auto want = HubPointIndex::Build(labels, points).ValueOrDie();
      ExpectIdentical(occ, want);
    }
  }
}

TEST(HubPointIndex, EraseOfUnknownOccurrenceReportsInternal) {
  Rng rng(15);
  auto g = RandomConnectedGraph(20, 0.5, rng, false);
  graph::GraphView view(&g);
  auto labels = HubLabelBuilder::Build(view).ValueOrDie();
  auto points = RandomPoints(g.num_nodes(), 4, rng);
  auto occ = HubPointIndex::Build(labels, points).ValueOrDie();
  // A point that was never indexed has no occurrence entries — the
  // erase must fail structurally (the engine's hub_stale signal), not
  // silently corrupt the runs.
  EXPECT_EQ(occ.ErasePoint(labels, 1000, 0).code(),
            StatusCode::kInternal);
  const Edge e = g.CollectEdges().front();
  EXPECT_EQ(
      occ.EraseEdgePoint(labels, 1000, {e.u, e.v, e.w / 2}, e.w).code(),
      StatusCode::kInternal);
}

// --- PR 9: order matrix, parallel bit-identity, packed labels ----------

constexpr HubOrder kAllOrders[] = {
    HubOrder::kDegreeDesc, HubOrder::kRandom, HubOrder::kPartition,
    HubOrder::kBetweennessApprox};

void ExpectIdenticalLabels(const HubLabelIndex& a, const HubLabelIndex& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_entries(), b.num_entries());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    auto la = a.Label(n);
    auto lb = b.Label(n);
    ASSERT_EQ(la.size(), lb.size()) << "node " << n;
    for (size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la[i], lb[i]) << "node " << n << " slot " << i;
    }
  }
}

TEST(HubOrderMatrix, EveryOrderStaysExactAndDeterministic) {
  for (uint64_t seed : {21u, 22u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(50, 0.5, rng, seed % 2 == 0);
    graph::GraphView view(&g);
    for (HubOrder order : kAllOrders) {
      HubLabelBuildOptions options;
      options.order = order;
      options.seed = 31;
      auto index = HubLabelBuilder::Build(view, options).ValueOrDie();
      ExpectAllPairsExact(g, index);
      auto again = HubLabelBuilder::Build(view, options).ValueOrDie();
      ExpectIdenticalLabels(index, again);
    }
  }
}

TEST(HubOrderMatrix, PartitionOrderHandlesDisconnectedGraphs) {
  // Two components of different shapes: the separator recursion must
  // emit every node exactly once and the labels must stay exact.
  auto g = graph::Graph::FromEdges(9, {{0, 1, 1.0},
                                       {1, 2, 2.0},
                                       {2, 3, 1.5},
                                       {3, 0, 1.0},
                                       {4, 5, 1.0},
                                       {5, 6, 2.0},
                                       {6, 7, 0.5}})
               .ValueOrDie();  // node 8 is isolated
  graph::GraphView view(&g);
  HubLabelBuildOptions options;
  options.order = HubOrder::kPartition;
  auto index = HubLabelBuilder::Build(view, options).ValueOrDie();
  ExpectAllPairsExact(g, index);
  EXPECT_EQ(index.Query(0, 4), kInfinity);
}

TEST(HubOrderMatrix, BuildStatsReportLabelShapeAndPhases) {
  Rng rng(23);
  auto g = RandomConnectedGraph(40, 0.6, rng);
  graph::GraphView view(&g);
  HubLabelBuildOptions options;
  options.order = HubOrder::kPartition;
  HubLabelBuildStats stats;
  auto index = HubLabelBuilder::Build(view, options, &stats).ValueOrDie();
  EXPECT_EQ(stats.num_entries, index.num_entries());
  EXPECT_DOUBLE_EQ(stats.avg_label_size, index.AverageLabelSize());
  size_t max_label = 0;
  for (NodeId n = 0; n < index.num_nodes(); ++n) {
    max_label = std::max(max_label, index.LabelSize(n));
  }
  EXPECT_EQ(stats.max_label_size, max_label);
  EXPECT_EQ(stats.threads, 1);
  EXPECT_EQ(stats.windows, 0u);
  EXPECT_EQ(stats.merge_rejected, 0u);
  EXPECT_GE(stats.order_s, 0.0);
  EXPECT_GE(stats.traverse_s, 0.0);
}

TEST(ParallelBuild, BitIdenticalToSerialAcrossThreadsAndWindows) {
  for (uint64_t seed : {24u, 25u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(60, 0.5, rng, seed % 2 == 1);
    graph::GraphView view(&g);
    for (HubOrder order :
         {HubOrder::kDegreeDesc, HubOrder::kPartition}) {
      HubLabelBuildOptions serial_opts;
      serial_opts.order = order;
      auto serial =
          HubLabelBuilder::Build(view, serial_opts).ValueOrDie();
      for (int threads : {2, 4}) {
        for (uint32_t window : {0u, 1u, 3u, 64u}) {
          HubLabelBuildOptions options = serial_opts;
          options.num_threads = threads;
          options.window = window;
          HubLabelBuildStats stats;
          auto parallel =
              HubLabelBuilder::Build(view, options, &stats).ValueOrDie();
          ExpectIdenticalLabels(parallel, serial);
          EXPECT_GT(stats.windows, 0u)
              << "threads=" << threads << " window=" << window;
          EXPECT_GT(stats.threads, 1);
        }
      }
    }
  }
}

TEST(ParallelBuild, VerifyCanonicalPasses) {
  Rng rng(26);
  auto g = RandomConnectedGraph(50, 0.6, rng);
  graph::GraphView view(&g);
  HubLabelBuildOptions options;
  options.order = HubOrder::kPartition;
  options.num_threads = 4;
  options.verify_canonical = true;
  auto index = HubLabelBuilder::Build(view, options).ValueOrDie();
  ExpectAllPairsExact(g, index);
}

TEST(ParallelBuild, HubPointIndexParallelBuildIsBitIdentical) {
  common::ThreadPool pool(3);
  for (uint64_t seed : {27u, 28u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(50, 0.5, rng, seed % 2 == 0);
    graph::GraphView view(&g);
    auto labels = HubLabelBuilder::Build(view).ValueOrDie();
    auto points = RandomPoints(g.num_nodes(), 12, rng);
    auto serial = HubPointIndex::Build(labels, points).ValueOrDie();
    auto parallel =
        HubPointIndex::Build(labels, points, &pool).ValueOrDie();
    ExpectIdentical(parallel, serial);

    auto edges = g.CollectEdges();
    std::vector<core::EdgePosition> positions;
    for (size_t i = 0; i < 10; ++i) {
      const Edge& e = edges[rng.UniformInt(edges.size())];
      positions.push_back({e.u, e.v, rng.Uniform(0.0, e.w)});
    }
    auto epoints = core::EdgePointSet::Create(g, positions).ValueOrDie();
    auto eserial = HubPointIndex::Build(labels, epoints).ValueOrDie();
    auto eparallel =
        HubPointIndex::Build(labels, epoints, &pool).ValueOrDie();
    ExpectIdentical(eparallel, eserial);
  }
}

TEST(PackedLabels, QueryMatchesAosIndexOnAllPairs) {
  for (uint64_t seed : {29u, 30u}) {
    Rng rng(seed);
    auto g = RandomConnectedGraph(55, 0.5, rng, seed % 2 == 1);
    graph::GraphView view(&g);
    auto labels = HubLabelBuilder::Build(view).ValueOrDie();
    auto packed = PackedHubLabelIndex::From(labels);
    ASSERT_EQ(packed.num_nodes(), labels.num_nodes());
    ASSERT_EQ(packed.num_entries(), labels.num_entries());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        // Bit-equal, not approximately equal: the SIMD merge must form
        // the same sums over the same match set.
        EXPECT_EQ(packed.Query(u, v), labels.Query(u, v))
            << "u=" << u << " v=" << v;
      }
    }
  }
}

TEST(PackedLabels, ScanAndQueryViaStoreConform) {
  Rng rng(31);
  auto g = RandomConnectedGraph(40, 0.6, rng);
  graph::GraphView view(&g);
  auto labels = HubLabelBuilder::Build(view).ValueOrDie();
  auto packed = PackedHubLabelIndex::From(labels);
  LabelCursor cursor;
  for (NodeId n = 0; n < labels.num_nodes(); ++n) {
    auto span = packed.Scan(n, cursor).ValueOrDie();
    auto want = labels.Label(n);
    ASSERT_EQ(span.size(), want.size()) << "node " << n;
    EXPECT_TRUE(std::equal(span.begin(), span.end(), want.begin()));
  }
  EXPECT_EQ(cursor.held_pins(), 0u);
  LabelCursor cu, cv;
  for (int i = 0; i < 50; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    EXPECT_EQ(QueryViaStore(packed, u, v, cu, cv).ValueOrDie(),
              labels.Query(u, v));
  }
}

TEST(PackedLabels, ServesRknnPrimitives) {
  // The packed store must be a drop-in LabelStore for the RkNN path.
  Rng rng(32);
  auto g = RandomConnectedGraph(50, 0.5, rng);
  graph::GraphView view(&g);
  auto points = RandomPoints(g.num_nodes(), 12, rng);
  auto labels = HubLabelBuilder::Build(view).ValueOrDie();
  auto packed = PackedHubLabelIndex::From(labels);
  auto occ = HubPointIndex::Build(packed, points).ValueOrDie();
  LabelWorkspace ws;
  for (int rep = 0; rep < 10; ++rep) {
    core::RknnOptions options;
    options.k = 1 + rep % 3;
    NodeId q = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    auto got =
        RknnViaLabels(packed, occ, occ, {&q, 1}, options, ws).ValueOrDie();
    auto want =
        core::BruteForceRknn(view, points, {&q, 1}, options).ValueOrDie();
    EXPECT_EQ(Ids(got), Ids(want)) << "rep=" << rep;
  }
}

TEST(HubPointIndex, CopySharesRunsAndPatchClonesOnlyTouchedHubs) {
  Rng rng(16);
  auto g = RandomConnectedGraph(40, 0.5, rng, true);
  graph::GraphView view(&g);
  auto labels = HubLabelBuilder::Build(view).ValueOrDie();
  auto points = RandomPoints(g.num_nodes(), 10, rng);
  const auto orig = HubPointIndex::Build(labels, points).ValueOrDie();

  HubPointIndex copy = orig;
  NodeId host = kInvalidNode;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (!points.Contains(n)) {
      host = n;
      break;
    }
  }
  ASSERT_NE(host, kInvalidNode);
  PointId p = points.AddPoint(host).ValueOrDie();
  ASSERT_TRUE(copy.InsertPoint(labels, p, host).ok());

  // The original is untouched — still the pre-insert index.
  EXPECT_EQ(orig.num_points(), copy.num_points() - 1);
  size_t shared = 0, cloned = 0;
  for (NodeId h = 0; h < orig.num_hubs(); ++h) {
    auto a = orig.ListOf(h);
    auto b = copy.ListOf(h);
    if (a.size() == b.size()) {
      // Untouched run: the copy must SHARE the original's storage
      // (copy-on-write at hub granularity), not own a clone.
      EXPECT_EQ(a.data(), b.data()) << "hub=" << h;
      shared += a.empty() ? 0 : 1;
    } else {
      ASSERT_EQ(b.size(), a.size() + 1) << "hub=" << h;
      ++cloned;
    }
  }
  // The label of `host` covers itself, so at least one run was patched;
  // a 10-point build leaves plenty untouched.
  EXPECT_GE(cloned, 1u);
  EXPECT_GE(shared, 1u);
}

}  // namespace
}  // namespace grnn::index
